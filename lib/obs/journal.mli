(** An append-only, size-rotated JSONL event journal.

    Where {!Trace} answers "what did {e this} run do" and {!Metrics} answers
    "how much, in aggregate", the journal answers "what happened an hour
    ago": a long-lived [cqa serve] daemon (or a one-shot [cqa certain] run)
    appends one schema-versioned event per line, and [cqa obs report] reads
    the file back offline. Events carry a monotonically increasing sequence
    number, seconds since the journal was opened, a {e kind} from the closed
    vocabulary {!kinds}, and flat key/value fields reusing
    {!Trace.value} as the carrier.

    This module is dependency-light like the rest of [obs]: it knows nothing
    about JSON. The line syntax is injected as [render] — in-tree that is
    [Analysis.Obs_codec.event_to_string], whose strict [event_of_string]
    decoder is the other half of the contract.

    Rotation is size-based: when appending an event would push the file past
    [max_bytes], the current file is renamed to [<path>.1] (replacing any
    previous one) and a fresh file is started with a [journal.rotated] event
    as its first line, so a reader of the live file knows history moved.
    At most [2 * max_bytes] bytes ever live on disk.

    Like a metrics shard, a journal has a single writer; events are flushed
    per line so a crash loses at most the event being written. *)

type event = {
  seq : int;  (** 0-based, monotonically increasing, survives rotation. *)
  t_s : float;  (** Seconds since the journal was opened. *)
  kind : string;  (** One of {!kinds}. *)
  fields : (string * Trace.value) list;
}

(** The closed event vocabulary:
    [request.admitted]/[request.downgraded]/[request.shed] (one admission
    verdict per request), [request.completed] (op, code, latency, tier, and
    per-site step fields), [plane.compiled]/[plane.patched]/[plane.rejected]
    (execution-plane lifecycle), [tier.fallback] (a solver tier gave up and
    the chain moved on), [budget.exhausted] (a request ran out of budget,
    with the hottest tick site), and [journal.rotated]. *)
val kinds : string list

val known_kind : string -> bool

type t

(** Default rotation threshold: 8 MiB. *)
val default_max_bytes : int

(** [create ~render path] opens [path] for appending (creating it when
    absent), with [render] producing one line (no trailing newline) per
    event. [clock] (default [Unix.gettimeofday]) stamps events relative to
    the journal's opening. Rotation triggers when an append would exceed
    [max_bytes] (default {!default_max_bytes}).
    @raise Invalid_argument when [max_bytes < 1024]. *)
val create :
  ?clock:(unit -> float) ->
  ?max_bytes:int ->
  render:(event -> string) ->
  string ->
  t

(** [log t kind fields] appends one event and flushes it.
    @raise Invalid_argument when [kind] is not in {!kinds} or the journal
    has been closed. *)
val log : t -> string -> (string * Trace.value) list -> unit

val path : t -> string

(** The sequence number the next event will carry (= events logged so far,
    counting rotation markers). *)
val seq : t -> int

(** Number of rotations performed. *)
val rotations : t -> int

(** Flush and close the underlying channel. Idempotent. *)
val close : t -> unit
