type event = {
  seq : int;
  t_s : float;
  kind : string;
  fields : (string * Trace.value) list;
}

(* The closed vocabulary of the journal. A fixed kind set is what makes the
   log greppable and the decoder strict: a typo'd kind is a crash at the
   call site, not a silently unqueryable line a month later. *)
let kinds =
  [
    "request.admitted";
    "request.downgraded";
    "request.shed";
    "request.completed";
    "plane.compiled";
    "plane.patched";
    "plane.rejected";
    "tier.fallback";
    "budget.exhausted";
    "journal.rotated";
  ]

let known_kind k = List.mem k kinds

type t = {
  path : string;
  render : event -> string;
  clock : unit -> float;
  epoch : float;
  max_bytes : int;
  mutable oc : out_channel;
  mutable bytes : int;
  mutable seq : int;
  mutable rotations : int;
  mutable closed : bool;
}

let default_max_bytes = 8 * 1024 * 1024

let create ?clock ?(max_bytes = default_max_bytes) ~render path =
  if max_bytes < 1024 then
    invalid_arg "Journal.create: max_bytes must be >= 1024";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  {
    path;
    render;
    clock;
    epoch = clock ();
    max_bytes;
    oc;
    bytes = out_channel_length oc;
    seq = 0;
    rotations = 0;
    closed = false;
  }

let path t = t.path
let seq t = t.seq
let rotations t = t.rotations

let write_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  t.bytes <- t.bytes + String.length line + 1;
  (* The journal is the crash-forensics artifact: an event buffered in a
     dead process explains nothing. One write syscall per event is cheap at
     request granularity — the obs-overhead bench holds it to the 5% bar. *)
  flush t.oc

let write_event t ev = write_line t (t.render ev)

let next_event t kind fields =
  let ev = { seq = t.seq; t_s = t.clock () -. t.epoch; kind; fields } in
  t.seq <- t.seq + 1;
  ev

let rotate t =
  close_out t.oc;
  let old = t.path ^ ".1" in
  (try Sys.remove old with Sys_error _ -> ());
  (try Sys.rename t.path old with Sys_error _ -> ());
  t.oc <- open_out t.path;
  t.bytes <- 0;
  t.rotations <- t.rotations + 1;
  write_event t
    (next_event t "journal.rotated"
       [ ("previous", Trace.String old); ("rotation", Trace.Int t.rotations) ])

let log t kind fields =
  if t.closed then invalid_arg "Journal.log: journal is closed";
  if not (known_kind kind) then
    invalid_arg ("Journal.log: unknown event kind " ^ kind);
  (* Size the event with a probe before allocating its seq: rotation writes
     a [journal.rotated] marker that claims the next seq, and the stream
     must stay seq-ordered within each segment. On the hot path (no
     rotation) the probe IS the event, so its rendering is written as-is —
     one render per event, which the obs-overhead bench bar depends on. *)
  let probe = { seq = t.seq; t_s = t.clock () -. t.epoch; kind; fields } in
  let line = t.render probe in
  if t.bytes > 0 && t.bytes + String.length line + 1 > t.max_bytes then begin
    rotate t;
    let ev = { probe with seq = t.seq } in
    t.seq <- t.seq + 1;
    write_event t ev
  end
  else begin
    t.seq <- t.seq + 1;
    write_line t line
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end
