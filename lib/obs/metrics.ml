type histogram = {
  h_bounds : float array;  (* strictly increasing inclusive upper bounds *)
  h_counts : int array;  (* length = length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let default_bounds = [ 0.01; 0.1; 1.; 10.; 100.; 1_000.; 10_000.; 100_000. ]

let validate_bounds bounds =
  if bounds = [] then invalid_arg "Metrics.observe: bounds must be non-empty";
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        if a >= b then
          invalid_arg "Metrics.observe: bounds must be strictly increasing"
        else strictly_increasing rest
    | _ -> ()
  in
  strictly_increasing bounds

let observe ?(bounds = default_bounds) t name x =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        validate_bounds bounds;
        let h_bounds = Array.of_list bounds in
        let h =
          {
            h_bounds;
            h_counts = Array.make (Array.length h_bounds + 1) 0;
            h_count = 0;
            h_sum = 0.;
          }
        in
        Hashtbl.add t.histograms name h;
        h
  in
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || x <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x

let tick_sink t site =
  incr t ("budget.tick." ^ if site = "" then "unnamed" else site)

type histogram_snapshot = {
  bounds : float list;
  counts : int list;
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot (t : t) =
  {
    counters =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold
        (fun name h acc ->
          ( name,
            {
              bounds = Array.to_list h.h_bounds;
              counts = Array.to_list h.h_counts;
              count = h.h_count;
              sum = h.h_sum;
            } )
          :: acc)
        t.histograms []
      |> List.sort by_name;
  }

let empty_snapshot = { counters = []; histograms = [] }

let merge t (s : snapshot) =
  List.iter (fun (name, n) -> incr ~by:n t name) s.counters;
  List.iter
    (fun (name, (hs : histogram_snapshot)) ->
      match Hashtbl.find_opt t.histograms name with
      | None ->
          validate_bounds hs.bounds;
          let counts = Array.of_list hs.counts in
          if Array.length counts <> List.length hs.bounds + 1 then
            invalid_arg "Metrics.merge: counts/bounds length mismatch";
          Hashtbl.add t.histograms name
            {
              h_bounds = Array.of_list hs.bounds;
              h_counts = counts;
              h_count = hs.count;
              h_sum = hs.sum;
            }
      | Some h ->
          if Array.to_list h.h_bounds <> hs.bounds then
            invalid_arg
              (Printf.sprintf "Metrics.merge: histogram %s has different bounds"
                 name);
          List.iteri (fun i n -> h.h_counts.(i) <- h.h_counts.(i) + n) hs.counts;
          h.h_count <- h.h_count + hs.count;
          h.h_sum <- h.h_sum +. hs.sum)
    s.histograms
