type histogram = {
  h_bounds : float array;  (* strictly increasing inclusive upper bounds *)
  h_counts : int array;  (* length = length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

(* One shard = one writer. The hot path (bumping an existing counter ref or
   histogram bucket) takes no lock: under the single-writer-per-shard
   contract the only concurrent accesses are read-side (snapshot/merge from
   another domain), and word-sized loads/stores do not tear under the OCaml
   5 memory model — a reader may observe a slightly stale count, never a
   torn one. The shard mutex serializes only *structural* changes (adding a
   new table entry) against those readers, so a reader never folds over a
   hashtable mid-resize. *)
type shard = {
  s_counters : (string, int ref) Hashtbl.t;
  s_histograms : (string, histogram) Hashtbl.t;
  s_lock : Mutex.t;
}

type t = {
  default : shard;
  reg_lock : Mutex.t;  (* guards [extra] *)
  mutable extra : shard list;  (* newest first *)
}

let debug = ref false
let set_debug b = debug := b

let make_shard () =
  {
    s_counters = Hashtbl.create 16;
    s_histograms = Hashtbl.create 16;
    s_lock = Mutex.create ();
  }

let create () =
  { default = make_shard (); reg_lock = Mutex.create (); extra = [] }

let shard t =
  let s = make_shard () in
  Mutex.lock t.reg_lock;
  t.extra <- s :: t.extra;
  Mutex.unlock t.reg_lock;
  s

let shard_count t =
  Mutex.lock t.reg_lock;
  let n = 1 + List.length t.extra in
  Mutex.unlock t.reg_lock;
  n

(* All shards, default first, registration order after. *)
let all_shards t =
  Mutex.lock t.reg_lock;
  let ss = t.default :: List.rev t.extra in
  Mutex.unlock t.reg_lock;
  ss

let counter_ref s name =
  match Hashtbl.find_opt s.s_counters name with
  | Some r -> r
  | None ->
      Mutex.lock s.s_lock;
      let r = ref 0 in
      Hashtbl.add s.s_counters name r;
      Mutex.unlock s.s_lock;
      r

let shard_incr ?(by = 1) s name =
  let r = counter_ref s name in
  r := !r + by

let incr ?by t name = shard_incr ?by t.default name

let counter_value t name =
  List.fold_left
    (fun acc s ->
      match Hashtbl.find_opt s.s_counters name with
      | Some r -> acc + !r
      | None -> acc)
    0 (all_shards t)

let default_bounds = [ 0.01; 0.1; 1.; 10.; 100.; 1_000.; 10_000.; 100_000. ]

let validate_bounds bounds =
  if bounds = [] then invalid_arg "Metrics.observe: bounds must be non-empty";
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        if a >= b then
          invalid_arg "Metrics.observe: bounds must be strictly increasing"
        else strictly_increasing rest
    | _ -> ()
  in
  strictly_increasing bounds

(* The first observation fixes a histogram's shape; silently accepting
   disagreeing [~bounds] afterwards was a footgun (the caller thinks it
   changed the buckets, the registry ignored it). Meter the mismatch so it
   is visible in every snapshot, warn once per name, and raise when the
   debug flag is set so tests can assert the contract. *)
let warned = Hashtbl.create 4
let warned_lock = Mutex.create ()

let bounds_mismatch s name =
  shard_incr s "obs.bounds_mismatch";
  if !debug then
    invalid_arg
      (Printf.sprintf
         "Metrics.observe: histogram %s already exists with different bounds \
          (the first observation fixes the shape)"
         name)
  else begin
    Mutex.lock warned_lock;
    let fresh = not (Hashtbl.mem warned name) in
    if fresh then Hashtbl.add warned name ();
    Mutex.unlock warned_lock;
    if fresh then
      Printf.eprintf
        "obs: warning: histogram %s observed with different bounds; the \
         first observation fixed the shape\n\
         %!"
        name
  end

let shard_observe ?bounds s name x =
  let h =
    match Hashtbl.find_opt s.s_histograms name with
    | Some h ->
        (match bounds with
        | Some b when b <> Array.to_list h.h_bounds -> bounds_mismatch s name
        | _ -> ());
        h
    | None ->
        let bounds = Option.value ~default:default_bounds bounds in
        validate_bounds bounds;
        let h_bounds = Array.of_list bounds in
        let h =
          {
            h_bounds;
            h_counts = Array.make (Array.length h_bounds + 1) 0;
            h_count = 0;
            h_sum = 0.;
          }
        in
        Mutex.lock s.s_lock;
        Hashtbl.add s.s_histograms name h;
        Mutex.unlock s.s_lock;
        h
  in
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || x <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x

let observe ?bounds t name x = shard_observe ?bounds t.default name x

(* Budget ticks are the hottest call site in the tree, and most runs tick
   one site in long runs — memoize the last (site, counter) pair so the
   steady state is a pointer compare and a ref bump, no string concat, no
   hash. The counter is still created lazily on first tick so registries
   that never tick stay empty. *)
let shard_tick_sink s =
  let last = ref None in
  fun site ->
    match !last with
    | Some (cached_site, r) when cached_site == site || String.equal cached_site site ->
        Stdlib.incr r
    | _ ->
        let name = "budget.tick." ^ if site = "" then "unnamed" else site in
        let r = counter_ref s name in
        last := Some (site, r);
        Stdlib.incr r

let tick_sink t = shard_tick_sink t.default

type histogram_snapshot = {
  bounds : float list;
  counts : int list;
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

(* Read-side merge: fold every shard's tables into accumulators under the
   shard lock, then sort by name. A single-shard registry therefore
   snapshots to exactly what the pre-shard implementation produced. *)
let snapshot (t : t) =
  let counters = Hashtbl.create 32 in
  let histograms = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Mutex.lock s.s_lock;
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counters name with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.add counters name (ref !r))
        s.s_counters;
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt histograms name with
          | None ->
              Hashtbl.add histograms name
                {
                  h_bounds = h.h_bounds;
                  h_counts = Array.copy h.h_counts;
                  h_count = h.h_count;
                  h_sum = h.h_sum;
                }
          | Some acc ->
              if acc.h_bounds <> h.h_bounds then
                invalid_arg
                  (Printf.sprintf
                     "Metrics.snapshot: histogram %s has different bounds \
                      across shards"
                     name);
              Array.iteri
                (fun i n -> acc.h_counts.(i) <- acc.h_counts.(i) + n)
                h.h_counts;
              acc.h_count <- acc.h_count + h.h_count;
              acc.h_sum <- acc.h_sum +. h.h_sum)
        s.s_histograms;
      Mutex.unlock s.s_lock)
    (all_shards t);
  {
    counters =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold
        (fun name h acc ->
          ( name,
            {
              bounds = Array.to_list h.h_bounds;
              counts = Array.to_list h.h_counts;
              count = h.h_count;
              sum = h.h_sum;
            } )
          :: acc)
        histograms []
      |> List.sort by_name;
  }

let empty_snapshot = { counters = []; histograms = [] }

(* Fold a snapshot into a shard. Structural adds lock; in-place bumps rely
   on the caller being the shard's writer. *)
let merge_into_shard s (snap : snapshot) =
  List.iter (fun (name, n) -> shard_incr ~by:n s name) snap.counters;
  List.iter
    (fun (name, (hs : histogram_snapshot)) ->
      match Hashtbl.find_opt s.s_histograms name with
      | None ->
          validate_bounds hs.bounds;
          let counts = Array.of_list hs.counts in
          if Array.length counts <> List.length hs.bounds + 1 then
            invalid_arg "Metrics.merge: counts/bounds length mismatch";
          let h =
            {
              h_bounds = Array.of_list hs.bounds;
              h_counts = counts;
              h_count = hs.count;
              h_sum = hs.sum;
            }
          in
          Mutex.lock s.s_lock;
          Hashtbl.add s.s_histograms name h;
          Mutex.unlock s.s_lock
      | Some h ->
          if Array.to_list h.h_bounds <> hs.bounds then
            invalid_arg
              (Printf.sprintf "Metrics.merge: histogram %s has different bounds"
                 name);
          List.iteri (fun i n -> h.h_counts.(i) <- h.h_counts.(i) + n) hs.counts;
          h.h_count <- h.h_count + hs.count;
          h.h_sum <- h.h_sum +. hs.sum)
    snap.histograms

let merge t (s : snapshot) = merge_into_shard t.default s

let shard_snapshot s =
  let one = { default = s; reg_lock = Mutex.create (); extra = [] } in
  snapshot one

(* Fold every extra shard into the default one and drop them. Call after the
   shard writers have been joined — "merged at join" — so the totals read
   from the plain single-shard API are exact and later snapshots touch one
   table. *)
let merge_shards t =
  Mutex.lock t.reg_lock;
  let shards = List.rev t.extra in
  t.extra <- [];
  Mutex.unlock t.reg_lock;
  List.iter (fun s -> merge_into_shard t.default (shard_snapshot s)) shards

let quantile (h : histogram_snapshot) q =
  if h.count <= 0 then None
  else
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.count in
    let bounds = Array.of_list h.bounds in
    let counts = Array.of_list h.counts in
    let n = Array.length bounds in
    let rec go i cum =
      if i >= Array.length counts then Some bounds.(n - 1)
      else
        let cum' = cum + counts.(i) in
        if counts.(i) > 0 && float_of_int cum' >= target then
          if i >= n then
            (* Overflow bucket has no upper edge; the last bound is the
               tightest claim the histogram can back. *)
            Some bounds.(n - 1)
          else
            let lower = if i = 0 then 0. else bounds.(i - 1) in
            let frac =
              (target -. float_of_int cum) /. float_of_int counts.(i)
            in
            Some (lower +. (Float.max 0. frac *. (bounds.(i) -. lower)))
        else go (i + 1) cum'
    in
    go 0 0
