type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * value) list;
}

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.pp_print_string ppf s

let pp_span ppf s =
  Format.fprintf ppf "[%d%s] %s %.6fs+%.6fs" s.id
    (match s.parent with None -> "" | Some p -> Printf.sprintf "<%d" p)
    s.name s.start_s s.duration_s;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) s.attrs

type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_start : float;
  mutable o_attrs : (string * value) list;  (* reversed *)
}

type t = {
  clock : unit -> float;
  epoch : float;
  mutable next_id : int;
  mutable stack : open_span list;  (* innermost first *)
  mutable closed : span list;  (* reversed close order *)
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  { clock; epoch = clock (); next_id = 0; stack = []; closed = [] }

let now t = t.clock () -. t.epoch

let enter t attrs name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let parent = match t.stack with [] -> None | o :: _ -> Some o.o_id in
  t.stack <-
    { o_id = id; o_parent = parent; o_name = name; o_start = now t;
      o_attrs = List.rev attrs }
    :: t.stack

let close t =
  match t.stack with
  | [] -> ()
  | o :: rest ->
      t.stack <- rest;
      t.closed <-
        {
          id = o.o_id;
          parent = o.o_parent;
          name = o.o_name;
          start_s = o.o_start;
          duration_s = now t -. o.o_start;
          attrs = List.rev o.o_attrs;
        }
        :: t.closed

let add_attr t key v =
  match t.stack with [] -> () | o :: _ -> o.o_attrs <- (key, v) :: o.o_attrs

let with_span t ?(attrs = []) name f =
  enter t attrs name;
  match f () with
  | v ->
      close t;
      v
  | exception e ->
      add_attr t "raised" (String (Printexc.to_string e));
      close t;
      raise e

let spans t = List.sort (fun a b -> compare a.id b.id) t.closed
let open_spans t = List.length t.stack
