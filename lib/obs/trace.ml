type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * value) list;
}

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.pp_print_string ppf s

let pp_span ppf s =
  Format.fprintf ppf "[%d%s] %s %.6fs+%.6fs" s.id
    (match s.parent with None -> "" | Some p -> Printf.sprintf "<%d" p)
    s.name s.start_s s.duration_s;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) s.attrs

type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_start : float;
  mutable o_attrs : (string * value) list;  (* reversed *)
}

type t = {
  clock : unit -> float;
  epoch : float;
  cap : int;
  mutable next_id : int;
  mutable stack : open_span list;  (* innermost first *)
  (* Closed spans live in a bounded ring: [buf] grows geometrically up to
     [cap], then wraps — slot [count mod cap] — dropping the oldest-closed
     span. A recorder in a week-long daemon stays O(capacity) while the
     drop count keeps truncation visible. *)
  mutable buf : span array;
  mutable count : int;  (* total spans ever closed *)
}

let default_capacity = 65_536

let create ?clock ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  { clock; epoch = clock (); cap = capacity; next_id = 0; stack = [];
    buf = [||]; count = 0 }

let capacity t = t.cap
let dropped t = if t.count > t.cap then t.count - t.cap else 0

let push t span =
  if t.count < t.cap then begin
    let blen = Array.length t.buf in
    if t.count >= blen then begin
      let nlen = Stdlib.min t.cap (Stdlib.max 8 (2 * blen)) in
      let nb = Array.make nlen span in
      Array.blit t.buf 0 nb 0 blen;
      t.buf <- nb
    end;
    t.buf.(t.count) <- span
  end
  else t.buf.(t.count mod t.cap) <- span;
  t.count <- t.count + 1

let now t = t.clock () -. t.epoch

let enter t attrs name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let parent = match t.stack with [] -> None | o :: _ -> Some o.o_id in
  t.stack <-
    { o_id = id; o_parent = parent; o_name = name; o_start = now t;
      o_attrs = List.rev attrs }
    :: t.stack

let close t =
  match t.stack with
  | [] -> ()
  | o :: rest ->
      t.stack <- rest;
      push t
        {
          id = o.o_id;
          parent = o.o_parent;
          name = o.o_name;
          start_s = o.o_start;
          duration_s = now t -. o.o_start;
          attrs = List.rev o.o_attrs;
        }

let add_attr t key v =
  match t.stack with [] -> () | o :: _ -> o.o_attrs <- (key, v) :: o.o_attrs

let with_span t ?(attrs = []) name f =
  enter t attrs name;
  match f () with
  | v ->
      close t;
      v
  | exception e ->
      add_attr t "raised" (String (Printexc.to_string e));
      close t;
      raise e

let spans t =
  let retained = Stdlib.min t.count t.cap in
  let out = ref [] in
  for i = retained - 1 downto 0 do
    out := t.buf.(i) :: !out
  done;
  List.sort (fun a b -> compare a.id b.id) !out

let open_spans t = List.length t.stack
