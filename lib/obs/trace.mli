(** Structured trace spans: the machine-readable explanation of a solver
    run.

    A recorder collects a tree of {e spans} — named intervals with parent
    links, timestamps, and key/value attributes. [Core.Solver]'s
    degradation chain opens one span per tier attempt (plus a root [solve]
    span), so a single traced run yields which tier ran, why it fell back,
    how long it took, and how many budget steps it burned at which sites.
    Serialization lives in [Analysis.Obs_codec]; this module is
    dependency-light on purpose so that [core] can emit spans without
    dragging in the JSON layer.

    Timestamps are seconds relative to the recorder's creation, read from
    an injectable clock (default [Unix.gettimeofday]). Relative timestamps
    make traces insensitive to wall-clock jumps between runs and keep the
    schema free of absolute times; they are monotonic as long as the clock
    is (inject a monotonic source — or a counter, as the deterministic
    tests do — when that matters). *)

(** An attribute value. The four carriers mirror what [Analysis.Json] can
    round-trip losslessly. *)
type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** A closed span. [id]s are assigned in start order, starting at 0;
    [parent] is the id of the enclosing span ([None] for roots). *)
type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;  (** Seconds since the recorder epoch. *)
  duration_s : float;
  attrs : (string * value) list;  (** In attachment order. *)
}

val pp_value : Format.formatter -> value -> unit
val pp_span : Format.formatter -> span -> unit

type t

(** Closed spans a recorder retains by default when no explicit [capacity]
    is given: 65536. *)
val default_capacity : int

(** [create ()] is a fresh recorder whose epoch is "now" on [clock]
    (default [Unix.gettimeofday]). Inject a deterministic clock for
    reproducible spans in tests. Closed spans are kept in a ring of at most
    [capacity] entries (default {!default_capacity}, must be >= 1): once
    full, closing a span evicts the oldest-closed one and bumps {!dropped}
    — a long-lived recorder is O(capacity), and truncation is never silent
    because the codec reports the drop count.
    @raise Invalid_argument when [capacity < 1]. *)
val create : ?clock:(unit -> float) -> ?capacity:int -> unit -> t

(** The ring capacity this recorder was created with. *)
val capacity : t -> int

(** Number of closed spans evicted from the ring so far (0 until the
    recorder has closed more than [capacity] spans). *)
val dropped : t -> int

(** [with_span t name f] runs [f] inside a new span: the span opens before
    [f], becomes the parent of any span opened by [f], and closes when [f]
    returns {e or raises} (an escaping exception is recorded as a [raised]
    attribute carrying [Printexc.to_string], then re-raised — spans are
    always well-nested). [attrs] seed the span's attributes. *)
val with_span : t -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a

(** [add_attr t key v] attaches an attribute to the innermost open span;
    dropped silently when no span is open (so instrumentation can be
    unconditional). *)
val add_attr : t -> string -> value -> unit

(** All retained closed spans, in start (= id) order. Spans still open —
    [with_span] calls currently on the stack — are not included, and neither
    are spans evicted from the ring (see {!dropped}). *)
val spans : t -> span list

(** Number of currently open spans (the [with_span] nesting depth). *)
val open_spans : t -> int
