(* Tests for the SAT substrate: CNF representation, DPLL vs brute force,
   the 3-SAT gadget-shape normalizer and the DIMACS-ish parser. *)

module Cnf = Satsolver.Cnf
module Dpll = Satsolver.Dpll
module Brute = Satsolver.Brute
module Threesat = Satsolver.Threesat

let cnf n cs = Cnf.make ~n_vars:n cs

let test_cnf_validation () =
  Alcotest.(check bool) "literal out of range" true
    (try
       ignore (cnf 2 [ [ 3 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero literal" true
    (try
       ignore (cnf 2 [ [ 0 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty clause" true
    (try
       ignore (cnf 2 [ [] ]);
       false
     with Invalid_argument _ -> true)

let test_eval () =
  let f = cnf 2 [ [ 1; -2 ]; [ 2 ] ] in
  Alcotest.(check bool) "model" true (Cnf.eval f [| false; true; true |]);
  Alcotest.(check bool) "non-model" false (Cnf.eval f [| false; false; true |])

let test_occurrences () =
  let f = cnf 3 [ [ 1; -2 ]; [ 2; 3 ]; [ -2 ] ] in
  let occ = Cnf.occurrences f in
  Alcotest.(check int) "var 2 occurs 3 times" 3 occ.(2);
  let pol = Cnf.polarities f in
  Alcotest.(check (pair int int)) "var 2 polarity" (1, 2) pol.(2);
  Alcotest.(check (list int)) "clauses of var 3" [ 1 ] (Cnf.clauses_of_var f 3)

let test_dpll_basic () =
  Alcotest.(check bool) "verum sat" true (Dpll.is_sat Cnf.verum);
  Alcotest.(check bool) "falsum unsat" false (Dpll.is_sat Cnf.falsum);
  Alcotest.(check bool) "simple sat" true (Dpll.is_sat (cnf 2 [ [ 1; 2 ]; [ -1; 2 ] ]));
  Alcotest.(check bool) "pigeonhole-ish unsat" false
    (Dpll.is_sat (cnf 2 [ [ 1 ]; [ -1; 2 ]; [ -2 ] ]))

let test_dpll_returns_model () =
  let f = cnf 3 [ [ 1; 2; 3 ]; [ -1; -2 ]; [ -3 ] ] in
  match Dpll.solve f with
  | Dpll.Unsat -> Alcotest.fail "should be satisfiable"
  | Dpll.Sat model -> Alcotest.(check bool) "model evaluates true" true (Cnf.eval f model)

let test_brute_guard () =
  Alcotest.(check bool) "refuses large formulas" true
    (try
       ignore (Brute.is_sat (cnf 26 [ [ 1 ] ]));
       false
     with Invalid_argument _ -> true)

let test_brute_count () =
  (* x1 ∨ x2 has three models over two variables. *)
  Alcotest.(check int) "three models" 3 (Brute.count_models (cnf 2 [ [ 1; 2 ] ]))

let random_cnf_gen =
  QCheck2.Gen.(
    let* n_vars = int_range 1 8 in
    let* n_clauses = int_range 0 12 in
    let lit = map (fun (v, sign) -> if sign then v else -v) (pair (int_range 1 n_vars) bool) in
    let* clauses = list_size (return n_clauses) (list_size (int_range 1 4) lit) in
    return (Cnf.make ~n_vars clauses))

let prop_dpll_equals_brute =
  QCheck2.Test.make ~name:"DPLL agrees with exhaustive enumeration" ~count:400
    random_cnf_gen (fun f -> Dpll.is_sat f = Brute.is_sat f)

let prop_dpll_model_valid =
  QCheck2.Test.make ~name:"DPLL models satisfy the formula" ~count:400 random_cnf_gen
    (fun f -> match Dpll.solve f with Dpll.Unsat -> true | Dpll.Sat m -> Cnf.eval f m)

let test_normalize_shapes () =
  let f = cnf 4 [ [ 1; 2; 3; 4 ]; [ -1; -2 ]; [ 1; -3 ]; [ 2; 3; -4 ]; [ -2; 4 ]; [ 1; 3 ] ] in
  match Threesat.normalize f with
  | Threesat.Decided _ -> ()
  | Threesat.Formula f' ->
      Alcotest.(check bool) "gadget shape" true (Threesat.in_gadget_shape f')

let test_normalize_preserves_sat () =
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 50 do
    let f = Threesat.random rng ~n_vars:6 ~n_clauses:10 in
    let expected = Brute.is_sat f in
    match Threesat.normalize f with
    | Threesat.Decided b -> Alcotest.(check bool) "decided correctly" expected b
    | Threesat.Formula f' ->
        Alcotest.(check bool) "equisatisfiable" expected (Dpll.is_sat f');
        Alcotest.(check bool) "gadget shape" true (Threesat.in_gadget_shape f')
  done

let test_normalize_decides_trivial () =
  (match Threesat.normalize (cnf 1 [ [ 1 ]; [ -1 ] ]) with
  | Threesat.Decided false -> ()
  | Threesat.Decided true | Threesat.Formula _ -> Alcotest.fail "expected Decided false");
  match Threesat.normalize (cnf 2 [ [ 1; 2 ] ]) with
  | Threesat.Decided true -> ()
  | Threesat.Decided false | Threesat.Formula _ ->
      (* pure literal elimination satisfies everything *)
      Alcotest.fail "expected Decided true"

let test_gadget_shape_rejects () =
  Alcotest.(check bool) "unit clause" false (Threesat.in_gadget_shape (cnf 2 [ [ 1 ]; [ -1; 2 ]; [ -2; 1 ] ]));
  Alcotest.(check bool) "repeated var in clause" false
    (Threesat.in_gadget_shape (cnf 2 [ [ 1; 1; 2 ]; [ -1; -2 ] ]));
  Alcotest.(check bool) "pure variable" false
    (Threesat.in_gadget_shape (cnf 2 [ [ 1; 2 ]; [ 1; -2 ] ]));
  Alcotest.(check bool) "four occurrences" false
    (Threesat.in_gadget_shape
       (cnf 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ]))

let test_chain_family () =
  List.iter
    (fun n ->
      let sat = Threesat.chain ~sat:true n in
      let unsat = Threesat.chain ~sat:false n in
      Alcotest.(check bool) "sat variant in gadget shape" true (Threesat.in_gadget_shape sat);
      Alcotest.(check bool) "unsat variant in gadget shape" true
        (Threesat.in_gadget_shape unsat);
      Alcotest.(check bool) "sat variant satisfiable" true (Dpll.is_sat sat);
      Alcotest.(check bool) "unsat variant unsatisfiable" false (Dpll.is_sat unsat))
    [ 4; 5; 8; 13 ];
  Alcotest.(check bool) "n < 4 rejected" true
    (try
       ignore (Threesat.chain ~sat:true 3);
       false
     with Invalid_argument _ -> true)

let test_parse_dimacs () =
  (match Cnf.parse "p cnf 3 2\n1 -2 0\n2 3 0\n" with
  | Error msg -> Alcotest.fail msg
  | Ok f ->
      Alcotest.(check int) "clauses" 2 (Cnf.n_clauses f);
      Alcotest.(check bool) "sat" true (Dpll.is_sat f));
  match Cnf.parse "1 2" with
  | Ok _ -> Alcotest.fail "unterminated clause"
  | Error _ -> ()

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "satsolver"
    [
      ( "cnf",
        [
          Alcotest.test_case "validation" `Quick test_cnf_validation;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "occurrences" `Quick test_occurrences;
          Alcotest.test_case "parse" `Quick test_parse_dimacs;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "basics" `Quick test_dpll_basic;
          Alcotest.test_case "model extraction" `Quick test_dpll_returns_model;
          Alcotest.test_case "brute guard" `Quick test_brute_guard;
          Alcotest.test_case "brute count" `Quick test_brute_count;
        ]
        @ qt [ prop_dpll_equals_brute; prop_dpll_model_valid ] );
      ( "threesat",
        [
          Alcotest.test_case "chain family" `Quick test_chain_family;
          Alcotest.test_case "normalize shapes" `Quick test_normalize_shapes;
          Alcotest.test_case "normalize preserves sat" `Quick test_normalize_preserves_sat;
          Alcotest.test_case "decides trivial" `Quick test_normalize_decides_trivial;
          Alcotest.test_case "gadget shape rejects" `Quick test_gadget_shape_rejects;
        ] );
    ]
