(* Tests for the interactive shell's command engine. *)

module Shell = Core.Shell

let run commands =
  List.fold_left
    (fun (state, outputs) line ->
      let state, out = Shell.exec state line in
      (state, out :: outputs))
    (Shell.initial, []) commands
  |> fun (state, outputs) -> (state, List.rev outputs)

let last outputs = List.nth outputs (List.length outputs - 1)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_requires_query () =
  let _, outputs = run [ "certain" ] in
  Alcotest.(check bool) "prompts for query" true (contains (last outputs) "no query set")

let test_query_classifies () =
  let _, outputs = run [ "query R(x | y) R(y | z)" ] in
  Alcotest.(check bool) "prints verdict" true (contains (last outputs) "Theorem 4")

let test_bad_inputs_reported () =
  let _, outputs =
    run [ "query R(x | y) S(y | z)"; "query R(x | y) R(y | z)"; "add R(1 2 3)"; "nonsense" ]
  in
  (match outputs with
  | [ bad_query; _; bad_fact; unknown ] ->
      Alcotest.(check bool) "bad query" true (contains bad_query "bad query");
      Alcotest.(check bool) "bad fact" true (contains bad_fact "does not fit");
      Alcotest.(check bool) "unknown command" true (contains unknown "unknown command")
  | _ -> Alcotest.fail "unexpected output count");
  ()

let test_full_session () =
  let _, outputs =
    run
      [
        "query R(x | y) R(y | z)";
        "add R(1 2)";
        "add R(1 9)";
        "add R(2 3)";
        "certain";
        "explain";
        "del R(1 9)";
        "certain";
        "explain";
        "answers x,z";
        "blocks";
      ]
  in
  let nth i = List.nth outputs i in
  Alcotest.(check bool) "not certain with the conflict" true (contains (nth 4) "CERTAIN: false");
  Alcotest.(check bool) "falsifying repair shown" true (contains (nth 5) "falsifying repair");
  Alcotest.(check bool) "certain after deletion" true (contains (nth 7) "CERTAIN: true");
  Alcotest.(check bool) "certificate shown" true (contains (nth 8) "derivation");
  Alcotest.(check bool) "answer tuple" true (contains (nth 9) "certain: true");
  Alcotest.(check bool) "no conflict left" false (contains (nth 10) "conflict")

let test_estimate_and_dot () =
  let _, outputs =
    run
      [
        "query R(x | y) R(y | z)";
        "add R(1 2)";
        "add R(2 3)";
        "estimate 50";
        "dot";
      ]
  in
  Alcotest.(check bool) "estimate reports frequency" true
    (contains (List.nth outputs 3) "frequency 1.000");
  Alcotest.(check bool) "dot output" true (contains (List.nth outputs 4) "graph")

let test_help_and_empty () =
  let _, outputs = run [ ""; "help" ] in
  Alcotest.(check string) "empty line silent" "" (List.nth outputs 0);
  Alcotest.(check bool) "help lists commands" true (contains (List.nth outputs 1) "certain")

let test_load () =
  let path = Filename.temp_file "cqa_shell" ".facts" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "R[2,1]\nR(1 2)\nR(2 3)\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _, outputs = run [ "query R(x | y) R(y | z)"; "load " ^ path; "certain" ] in
      Alcotest.(check bool) "loaded" true (contains (List.nth outputs 1) "loaded 2 facts");
      Alcotest.(check bool) "certain" true (contains (List.nth outputs 2) "CERTAIN: true"))

let test_load_rejects_foreign_relation () =
  let path = Filename.temp_file "cqa_shell" ".facts" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "S[2,1]\nS(1 2)\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _, outputs = run [ "query R(x | y) R(y | z)"; "load " ^ path ] in
      Alcotest.(check bool) "rejected" true
        (contains (List.nth outputs 1) "other relations"))

let () =
  Alcotest.run "shell"
    [
      ( "shell",
        [
          Alcotest.test_case "requires query" `Quick test_requires_query;
          Alcotest.test_case "query classifies" `Quick test_query_classifies;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs_reported;
          Alcotest.test_case "full session" `Quick test_full_session;
          Alcotest.test_case "estimate and dot" `Quick test_estimate_and_dot;
          Alcotest.test_case "help and empty" `Quick test_help_and_empty;
          Alcotest.test_case "load" `Quick test_load;
          Alcotest.test_case "foreign relation" `Quick test_load_rejects_foreign_relation;
        ] );
    ]
