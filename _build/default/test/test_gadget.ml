(* Tests for the lower-bound gadgets: the sjf reduction of Proposition 2 and
   the 3-SAT reduction of Theorem 12 (Lemma 13), validated against exact
   solvers and the SAT oracle. *)

module Parse = Qlang.Parse
module Query = Qlang.Query
module Sjf = Qlang.Sjf
module Cnf = Satsolver.Cnf
module Dpll = Satsolver.Dpll
module Threesat = Satsolver.Threesat
module Gadget = Core.Gadget
module Tripath = Core.Tripath

let q2 = Workload.Catalog.q2

let gadget =
  lazy
    (match Gadget.of_tripath Workload.Catalog.q2_nice_fork_tripath with
    | Ok g -> g
    | Error msg -> failwith msg)

(* ------------------------------------------------------------------ *)
(* Proposition 2: sjf reduction *)

let prop2_roundtrip q seed n =
  let rng = Random.State.make [| seed |] in
  let s = Sjf.of_query q in
  let ok = ref true in
  for _ = 1 to n do
    let db = Workload.Randdb.random_sjf rng s ~n_facts:10 ~domain:3 in
    let lhs = Cqa.Exact.certain_sjf s db in
    let rhs = Cqa.Exact.certain_query q (Sjf.reduce q db) in
    if lhs <> rhs then ok := false
  done;
  !ok

let test_prop2_q2 () =
  Alcotest.(check bool) "Prop 2 for q2" true (prop2_roundtrip q2 41 40)

let test_prop2_q5 () =
  Alcotest.(check bool) "Prop 2 for q5" true (prop2_roundtrip Workload.Catalog.q5 43 40)

let test_prop2_q6 () =
  Alcotest.(check bool) "Prop 2 for q6" true (prop2_roundtrip Workload.Catalog.q6 47 40)

let test_prop2_q1 () =
  Alcotest.(check bool) "Prop 2 for q1" true (prop2_roundtrip Workload.Catalog.q1 53 40)

(* ------------------------------------------------------------------ *)
(* Theorem 12 gadget *)

let test_gadget_of_tripath_rejects_triangle () =
  (* A triangle-tripath must be rejected by the gadget constructor. *)
  match Core.Tripath_search.find_triangle Workload.Catalog.q6 with
  | Core.Tripath_search.Not_found -> Alcotest.fail "q6 admits a triangle"
  | Core.Tripath_search.Found (tp, _) -> (
      match Gadget.of_tripath tp with
      | Ok _ -> Alcotest.fail "triangle accepted"
      | Error _ -> ())

let test_gadget_rejects_bad_shape () =
  let g = Lazy.force gadget in
  let phi = Cnf.make ~n_vars:2 [ [ 1 ]; [ -1; 2 ]; [ -2; 1 ] ] in
  Alcotest.(check bool) "unit clause rejected" true
    (try
       ignore (Gadget.database g phi);
       false
     with Invalid_argument _ -> true)

let test_gadget_paper_example () =
  (* The formula of Figure 2: (¬s ∨ t ∨ u)(¬s ∨ ¬t ∨ u)(s ∨ ¬t ∨ ¬u),
     satisfiable, hence q2 is not certain on the gadget database. *)
  let g = Lazy.force gadget in
  let phi = Cnf.make ~n_vars:3 [ [ -1; 2; 3 ]; [ -1; -2; 3 ]; [ 1; -2; -3 ] ] in
  Alcotest.(check bool) "gadget shape" true (Threesat.in_gadget_shape phi);
  Alcotest.(check bool) "phi is satisfiable" true (Dpll.is_sat phi);
  Alcotest.(check bool) "hence not certain" false (Gadget.certain g phi)

let test_gadget_unsat_formula () =
  (* An unsatisfiable gadget-shaped formula: a cyclic implication chain
     x1 = x2 = x3 = x4 with (x1∨y)(x2∨¬y) forcing the xs true and
     (¬x3∨z)(¬x4∨¬z) forcing them false. Every variable occurs at most three
     times with both polarities and every clause has two distinct variables. *)
  let phi =
    Cnf.make ~n_vars:6
      [ [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ]; [ -4; 1 ]; [ 1; 5 ]; [ 2; -5 ]; [ -3; 6 ]; [ -4; -6 ] ]
  in
  Alcotest.(check bool) "gadget shape" true (Threesat.in_gadget_shape phi);
  Alcotest.(check bool) "phi is unsatisfiable" false (Dpll.is_sat phi);
  let g = Lazy.force gadget in
  Alcotest.(check bool) "hence certain" true (Gadget.certain g phi)

let test_gadget_block_structure () =
  let g = Lazy.force gadget in
  let phi = Cnf.make ~n_vars:3 [ [ -1; 2; 3 ]; [ -1; -2; 3 ]; [ 1; -2; -3 ] ] in
  let db = Gadget.database g phi in
  (* After padding, every block has at least two facts. *)
  List.iter
    (fun b ->
      Alcotest.(check bool) "block has >= 2 facts" true (Relational.Block.size b >= 2))
    (Relational.Database.blocks db);
  (* Clause blocks: each clause contributes one block with one root per
     literal: for 3-literal clauses, 3 facts. *)
  let clause_blocks =
    List.filter (fun (b : Relational.Block.t) -> Relational.Block.size b = 3)
      (Relational.Database.blocks db)
  in
  Alcotest.(check int) "three clause blocks" 3 (List.length clause_blocks)

let test_gadget_random_equivalence () =
  (* Lemma 13 on random gadget-shaped formulas: φ satisfiable iff the gadget
     database is not certain. *)
  let g = Lazy.force gadget in
  let rng = Random.State.make [| 4242 |] in
  let tried = ref 0 in
  while !tried < 12 do
    match Workload.Randdb.hard_instance rng g ~n_vars:5 ~n_clauses:8 with
    | None -> ()
    | Some (phi, db) ->
        incr tried;
        let sat = Dpll.is_sat phi in
        let certain = Cqa.Exact.certain_query q2 db in
        Alcotest.(check bool)
          (Format.asprintf "equivalence for %a" Cnf.pp phi)
          (not sat) certain
  done

let test_gadget_scales_with_formula () =
  let g = Lazy.force gadget in
  let phi = Cnf.make ~n_vars:3 [ [ -1; 2; 3 ]; [ -1; -2; 3 ]; [ 1; -2; -3 ] ] in
  let db = Gadget.database g phi in
  (* 3 variables with 3 occurrences each: 9 tripath copies of 21 facts,
     minus merged leaf/root blocks, plus padding. Just pin the size so
     construction changes are noticed. *)
  Alcotest.(check int) "database size" 177 (Relational.Database.size db)

let test_gadget_generalises_beyond_q2 () =
  (* The construction is generic in the nice fork-tripath: run it for the
     arity-5 fork query of the catalogue. *)
  let q = (Workload.Catalog.find "fork-2").Workload.Catalog.query in
  match Gadget.create q with
  | Error msg -> Alcotest.fail msg
  | Ok g ->
      let rng = Random.State.make [| 5 |] in
      let checked = ref 0 in
      while !checked < 5 do
        match Workload.Randdb.hard_instance rng g ~n_vars:4 ~n_clauses:6 with
        | None -> ()
        | Some (phi, db) ->
            incr checked;
            Alcotest.(check bool) "Lemma 13 for fork-2"
              (not (Dpll.is_sat phi))
              (Cqa.Exact.certain_query q db)
      done

let () =
  Alcotest.run "gadget"
    [
      ( "prop2",
        [
          Alcotest.test_case "q2" `Slow test_prop2_q2;
          Alcotest.test_case "q5" `Slow test_prop2_q5;
          Alcotest.test_case "q6" `Slow test_prop2_q6;
          Alcotest.test_case "q1" `Slow test_prop2_q1;
        ] );
      ( "thm12",
        [
          Alcotest.test_case "rejects triangle" `Slow test_gadget_of_tripath_rejects_triangle;
          Alcotest.test_case "rejects bad shape" `Quick test_gadget_rejects_bad_shape;
          Alcotest.test_case "paper example" `Quick test_gadget_paper_example;
          Alcotest.test_case "unsat formula" `Quick test_gadget_unsat_formula;
          Alcotest.test_case "block structure" `Quick test_gadget_block_structure;
          Alcotest.test_case "random equivalence" `Slow test_gadget_random_equivalence;
          Alcotest.test_case "size pinned" `Quick test_gadget_scales_with_formula;
          Alcotest.test_case "generalises beyond q2" `Slow test_gadget_generalises_beyond_q2;
        ] );
    ]
