(* Tests for the first-order substrate (formulas, structures, evaluation),
   the FO implementation of Cert_2, and the Kolaitis-Pema self-join-free
   dichotomy. *)

module F = Folog.Formula
module S = Folog.Structure
module E = Folog.Eval
module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database
module Query = Qlang.Query
module Sjf = Qlang.Sjf

let vi = Value.int
let fact vs = Fact.make "R" (List.map vi vs)
let q3 = Workload.Catalog.q3
let q6 = Workload.Catalog.q6
let db_of (q : Query.t) facts = Database.of_facts [ q.Query.schema ] facts

(* ------------------------------------------------------------------ *)
(* folog *)

let sample_structure () =
  let s = S.create ~size:3 in
  S.add s "E" [ 0; 1 ];
  S.add s "E" [ 1; 2 ];
  s

let test_structure_basics () =
  let s = sample_structure () in
  Alcotest.(check bool) "mem" true (S.mem s "E" [ 0; 1 ]);
  Alcotest.(check bool) "not mem" false (S.mem s "E" [ 2; 0 ]);
  Alcotest.(check int) "cardinal" 2 (S.cardinal s "E");
  Alcotest.(check int) "undeclared" 0 (S.cardinal s "F");
  Alcotest.(check bool) "arity mismatch" true
    (try
       S.add s "E" [ 0 ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try
       S.add s "E" [ 0; 5 ];
       false
     with Invalid_argument _ -> true)

let test_structure_copy_independent () =
  let s = sample_structure () in
  let s' = S.copy s in
  S.add s' "E" [ 2; 0 ];
  Alcotest.(check bool) "copy extended" true (S.mem s' "E" [ 2; 0 ]);
  Alcotest.(check bool) "original untouched" false (S.mem s "E" [ 2; 0 ])

let test_eval_quantifiers () =
  let s = sample_structure () in
  (* Every element has an outgoing or incoming edge. *)
  let f =
    F.Forall
      ( "x",
        F.Exists
          ("y", F.Or (F.Atom ("E", [ "x"; "y" ]), F.Atom ("E", [ "y"; "x" ]))) )
  in
  Alcotest.(check bool) "connectivity-ish" true (E.holds s f);
  (* There is a universal source: false. *)
  let g = F.Exists ("x", F.Forall ("y", F.Atom ("E", [ "x"; "y" ]))) in
  Alcotest.(check bool) "no universal source" false (E.holds s g);
  (* Equality and implication. *)
  let h = F.Forall ("x", F.Forall ("y", F.Implies (F.Atom ("E", [ "x"; "y" ]), F.Not (F.Eq ("x", "y"))))) in
  Alcotest.(check bool) "irreflexive" true (E.holds s h)

let test_eval_select () =
  let s = sample_structure () in
  let f = F.Exists ("y", F.Atom ("E", [ "x"; "y" ])) in
  let sources = E.select s f ~tuple_vars:[ "x" ] in
  Alcotest.(check int) "two sources" 2 (List.length sources)

let test_eval_unbound () =
  let s = sample_structure () in
  Alcotest.(check bool) "unbound variable" true
    (try
       ignore (E.holds s (F.Atom ("E", [ "x"; "y" ])));
       false
     with Invalid_argument _ -> true)

let test_formula_free_vars () =
  let f = F.Exists ("y", F.And (F.Atom ("E", [ "x"; "y" ]), F.Eq ("y", "z"))) in
  Alcotest.(check (list string)) "free vars" [ "x"; "z" ] (F.free_vars f)

(* ------------------------------------------------------------------ *)
(* Cert_2 as an FO fixpoint *)

let test_certk_fo_simple () =
  let g q facts = Qlang.Solution_graph.of_query q (db_of q facts) in
  Alcotest.(check bool) "certain" true
    (Cqa.Certk_fo.run (g q3 [ fact [ 1; 2 ]; fact [ 2; 3 ] ]));
  Alcotest.(check bool) "not certain" false
    (Cqa.Certk_fo.run (g q3 [ fact [ 1; 2 ]; fact [ 1; 9 ]; fact [ 2; 3 ] ]))

let test_certk_fo_fano () =
  let g = Qlang.Solution_graph.of_query q6 (Workload.Designs.fano_minus 0) in
  Alcotest.(check bool) "Cert_2 FO fails on Fano witness" false (Cqa.Certk_fo.run g);
  let g2 = Qlang.Solution_graph.of_query q6 Workload.Designs.two_orientations in
  Alcotest.(check bool) "Cert_2 FO solves the 2-triple instance" true (Cqa.Certk_fo.run g2)

let prop_certk_fo_equals_certk_q3 =
  QCheck2.Test.make ~name:"FO Cert_2 = antichain Cert_2 (q3)" ~count:120
    QCheck2.Gen.(
      let* n = int_range 0 8 in
      let* ks = list_size (return n) (int_range 0 3) in
      let* vs = list_size (return n) (int_range 0 3) in
      return (List.map2 (fun k v -> fact [ k; v ]) ks vs))
    (fun facts ->
      let g = Qlang.Solution_graph.of_query q3 (db_of q3 facts) in
      Cqa.Certk_fo.run g = Cqa.Certk.run ~k:2 g)

let prop_certk_fo_equals_naive_q6 =
  QCheck2.Test.make ~name:"FO Cert_2 = naive Cert_2 (q6)" ~count:60
    QCheck2.Gen.(
      let* n = int_range 0 6 in
      let* ts = list_size (return n) (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) ts))
    (fun facts ->
      let g = Qlang.Solution_graph.of_query q6 (db_of q6 facts) in
      Cqa.Certk_fo.run g = Cqa.Certk_naive.run ~k:2 g)

(* ------------------------------------------------------------------ *)
(* Kolaitis-Pema self-join-free dichotomy *)

let test_sjf_classify_paper_examples () =
  (* sjf(q1) is coNP-complete (Theorem 3's source), sjf(q2) is PTIME even
     though q2 itself is coNP-complete — the paper's point about the
     converse of Proposition 2. *)
  (match Cqa.Sjf_dichotomy.classify (Sjf.of_query Workload.Catalog.q1) with
  | Cqa.Sjf_dichotomy.Sjf_conp_complete -> ()
  | Cqa.Sjf_dichotomy.Sjf_ptime -> Alcotest.fail "sjf(q1) must be hard");
  match Cqa.Sjf_dichotomy.classify (Sjf.of_query Workload.Catalog.q2) with
  | Cqa.Sjf_dichotomy.Sjf_ptime -> ()
  | Cqa.Sjf_dichotomy.Sjf_conp_complete -> Alcotest.fail "sjf(q2) must be PTIME"

let test_sjf_classify_consistency_with_thm3 () =
  (* Our classifier marks q coNP-hard by Theorem 3 exactly when sjf(q) is
     hard by Kolaitis-Pema. *)
  List.iter
    (fun (e : Workload.Catalog.entry) ->
      let q = e.Workload.Catalog.query in
      if Qlang.Query.triviality q = None then
        let sjf_hard =
          Cqa.Sjf_dichotomy.classify (Sjf.of_query q) = Cqa.Sjf_dichotomy.Sjf_conp_complete
        in
        Alcotest.(check bool)
          (e.Workload.Catalog.name ^ " Thm3 consistency")
          sjf_hard
          (Core.Syntactic.thm3_conp_hard q))
    Workload.Catalog.all

let test_sjf_ptime_solved_by_cert2 () =
  (* Fuzz: for random queries whose sjf variant is PTIME, Cert_2 on the
     two-relation database equals the exact solver. *)
  let rng = Random.State.make [| 60 |] in
  let checked = ref 0 in
  while !checked < 25 do
    let q = Workload.Randquery.random rng ~arity:3 ~key_len:1 ~n_vars:4 in
    let s = Sjf.of_query q in
    if Cqa.Sjf_dichotomy.classify s = Cqa.Sjf_dichotomy.Sjf_ptime then begin
      incr checked;
      for _ = 1 to 5 do
        let db = Workload.Randdb.random_sjf rng s ~n_facts:10 ~domain:3 in
        Alcotest.(check bool) "Cert_2 exact on PTIME sjf query"
          (Cqa.Sjf_dichotomy.certain_exact s db)
          (Cqa.Sjf_dichotomy.certain_ptime s db)
      done
    end
  done

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fo"
    [
      ( "folog",
        [
          Alcotest.test_case "structure basics" `Quick test_structure_basics;
          Alcotest.test_case "copy independent" `Quick test_structure_copy_independent;
          Alcotest.test_case "quantifiers" `Quick test_eval_quantifiers;
          Alcotest.test_case "select" `Quick test_eval_select;
          Alcotest.test_case "unbound variable" `Quick test_eval_unbound;
          Alcotest.test_case "free vars" `Quick test_formula_free_vars;
        ] );
      ( "certk-fo",
        [
          Alcotest.test_case "simple" `Quick test_certk_fo_simple;
          Alcotest.test_case "fano family" `Quick test_certk_fo_fano;
        ]
        @ qt [ prop_certk_fo_equals_certk_q3; prop_certk_fo_equals_naive_q6 ] );
      ( "sjf-dichotomy",
        [
          Alcotest.test_case "paper examples" `Quick test_sjf_classify_paper_examples;
          Alcotest.test_case "Thm3 consistency" `Quick test_sjf_classify_consistency_with_thm3;
          Alcotest.test_case "PTIME side via Cert_2" `Slow test_sjf_ptime_solved_by_cert2;
        ] );
    ]
