(* Tests for the bipartite graph and matching substrate: Hopcroft-Karp is
   checked against the naive augmenting-path oracle on random graphs. *)

module Bipartite = Graphs.Bipartite
module Matching = Graphs.Matching

let test_make_validates () =
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Bipartite.make ~n_left:2 ~n_right:2 [ (2, 0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative size" true
    (try
       ignore (Bipartite.make ~n_left:(-1) ~n_right:0 []);
       false
     with Invalid_argument _ -> true)

let test_duplicate_edges_collapse () =
  let g = Bipartite.make ~n_left:1 ~n_right:1 [ (0, 0); (0, 0) ] in
  Alcotest.(check int) "one edge" 1 (Bipartite.n_edges g)

let test_perfect_matching () =
  (* A 3x3 cycle-ish graph with a perfect matching. *)
  let g = Bipartite.make ~n_left:3 ~n_right:3 [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2); (2, 0) ] in
  let m = Matching.hopcroft_karp g in
  Alcotest.(check int) "size 3" 3 m.Matching.size;
  Alcotest.(check bool) "saturates" true (Matching.saturates_left g m);
  Alcotest.(check bool) "valid" true (Matching.is_valid g m)

let test_no_perfect_matching () =
  (* Two left vertices compete for a single right vertex. *)
  let g = Bipartite.make ~n_left:2 ~n_right:2 [ (0, 0); (1, 0) ] in
  let m = Matching.hopcroft_karp g in
  Alcotest.(check int) "size 1" 1 m.Matching.size;
  Alcotest.(check bool) "not saturating" false (Matching.saturates_left g m)

let test_empty_graph () =
  let g = Bipartite.make ~n_left:0 ~n_right:0 [] in
  let m = Matching.hopcroft_karp g in
  Alcotest.(check int) "empty matching" 0 m.Matching.size;
  Alcotest.(check bool) "vacuously saturating" true (Matching.saturates_left g m)

let test_isolated_left_vertex () =
  let g = Bipartite.make ~n_left:2 ~n_right:1 [ (0, 0) ] in
  let m = Matching.hopcroft_karp g in
  Alcotest.(check bool) "cannot saturate" false (Matching.saturates_left g m)

(* Hall's theorem witness: a K_{3,3} minus a perfect matching still has a
   perfect matching. *)
let test_k33_minus_diagonal () =
  let edges =
    List.concat_map (fun u -> List.filter_map (fun v -> if u = v then None else Some (u, v)) [ 0; 1; 2 ]) [ 0; 1; 2 ]
  in
  let g = Bipartite.make ~n_left:3 ~n_right:3 edges in
  Alcotest.(check int) "perfect" 3 (Matching.hopcroft_karp g).Matching.size

let random_graph_gen =
  QCheck2.Gen.(
    let* n_left = int_range 0 8 in
    let* n_right = int_range 1 8 in
    let* density = int_range 0 100 in
    let* bits = list_size (return (n_left * n_right)) (int_range 0 99) in
    let edges =
      List.concat
        (List.mapi
           (fun idx b ->
             if b < density then [ (idx / n_right, idx mod n_right) ] else [])
           bits)
    in
    return (Bipartite.make ~n_left ~n_right edges))

let prop_hk_equals_augmenting =
  QCheck2.Test.make ~name:"Hopcroft-Karp size = augmenting-path size" ~count:300
    random_graph_gen (fun g ->
      let m1 = Matching.hopcroft_karp g and m2 = Matching.augmenting g in
      m1.Matching.size = m2.Matching.size)

let prop_matchings_valid =
  QCheck2.Test.make ~name:"computed matchings are valid" ~count:300 random_graph_gen
    (fun g ->
      Matching.is_valid g (Matching.hopcroft_karp g)
      && Matching.is_valid g (Matching.augmenting g))

let prop_matching_bounded =
  QCheck2.Test.make ~name:"matching size bounded by both sides" ~count:300
    random_graph_gen (fun g ->
      let m = Matching.hopcroft_karp g in
      m.Matching.size <= g.Bipartite.n_left && m.Matching.size <= g.Bipartite.n_right)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graphs"
    [
      ( "bipartite",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_collapse;
        ] );
      ( "matching",
        [
          Alcotest.test_case "perfect matching" `Quick test_perfect_matching;
          Alcotest.test_case "no perfect matching" `Quick test_no_perfect_matching;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "isolated vertex" `Quick test_isolated_left_vertex;
          Alcotest.test_case "K33 minus diagonal" `Quick test_k33_minus_diagonal;
        ]
        @ qt [ prop_hk_equals_augmenting; prop_matchings_valid; prop_matching_bounded ] );
    ]
