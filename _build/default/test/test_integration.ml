(* End-to-end integration tests cutting across all libraries: the Theorem 14
   separation family, cross-solver agreement on every catalogue query, the
   Proposition 16 clique-database characterization, and the full
   classify-then-solve pipeline. *)

module Parse = Qlang.Parse
module Query = Qlang.Query
module Solution_graph = Qlang.Solution_graph
module Designs = Workload.Designs
module Catalog = Workload.Catalog

let q6 = Catalog.q6

(* ------------------------------------------------------------------ *)
(* Theorem 14: Cert_k is not exact for triangle queries. *)

let test_thm14_k1_witness () =
  let g = Solution_graph.of_query q6 Designs.two_orientations in
  Alcotest.(check bool) "certain" true (Cqa.Exact.certain g);
  Alcotest.(check bool) "Cert_1 fails" false (Cqa.Certk.run ~k:1 g);
  Alcotest.(check bool) "Cert_2 recovers" true (Cqa.Certk.run ~k:2 g);
  Alcotest.(check bool) "matching side solves it" false (Cqa.Matching_alg.run g)

let test_thm14_k2_witness_fano () =
  (* The Fano plane minus any line: seven blocks over six rotation cliques,
     certain by Hall's condition, invisible to Cert_2. *)
  for i = 0 to 6 do
    let g = Solution_graph.of_query q6 (Designs.fano_minus i) in
    Alcotest.(check bool) "certain" true (Cqa.Exact.certain g);
    Alcotest.(check bool) "Cert_2 fails" false (Cqa.Certk.run ~k:2 g);
    Alcotest.(check bool) "Cert_3 recovers" true (Cqa.Certk.run ~k:3 g);
    Alcotest.(check bool) "combined algorithm solves it" true
      (Cqa.Combined.run ~k:2 g)
  done

let test_full_fano_not_certain () =
  (* With all seven lines a perfect matching exists: not certain; both the
     matching algorithm and the exact solver must see it. *)
  let g = Solution_graph.of_query q6 (Designs.db_of_triples Designs.fano_lines) in
  Alcotest.(check bool) "not certain" false (Cqa.Exact.certain g);
  Alcotest.(check bool) "matching exists" true (Cqa.Matching_alg.run g)

(* ------------------------------------------------------------------ *)
(* Proposition 16: on clique databases, ¬Matching is exact. *)

let test_prop16_on_rotation_systems () =
  let rng = Random.State.make [| 77 |] in
  for _ = 1 to 40 do
    let db = Designs.rotation_system rng ~n_keys:6 ~n_triples:5 in
    let g = Solution_graph.of_query q6 db in
    Alcotest.(check bool) "rotation systems are clique databases" true
      (Solution_graph.is_clique_database g);
    Alcotest.(check bool) "Prop 16 equivalence" (Cqa.Exact.certain g)
      (not (Cqa.Matching_alg.run g))
  done

(* ------------------------------------------------------------------ *)
(* Cross-solver agreement on the full catalogue. *)

let test_all_solvers_agree_on_catalog () =
  let rng = Random.State.make [| 31337 |] in
  List.iter
    (fun (e : Catalog.entry) ->
      let q = e.Catalog.query in
      (* Keep instances small: the exact enumeration oracle is exponential. *)
      for _ = 1 to 8 do
        let db = Workload.Randdb.random_for_query rng q ~n_facts:8 ~domain:3 in
        let g = Solution_graph.of_query q db in
        let exact = Cqa.Exact.certain g in
        Alcotest.(check bool) (e.Catalog.name ^ ": SAT = exact") exact (Cqa.Satreduce.certain g);
        Alcotest.(check bool) (e.Catalog.name ^ ": enum = exact") exact (Cqa.Exact.certain_enum q db);
        (* Both polynomial under-approximations stay sound. *)
        if Cqa.Certk.run ~k:2 g then
          Alcotest.(check bool) (e.Catalog.name ^ ": Cert_2 sound") true exact;
        if not (Cqa.Matching_alg.run g) then
          Alcotest.(check bool) (e.Catalog.name ^ ": anti-matching sound") true exact
      done)
    Catalog.all

(* ------------------------------------------------------------------ *)
(* The classify-then-solve pipeline end to end (PTIME verdicts only get
   polynomial algorithms; answers always match the exact solver). *)

let test_pipeline_agreement () =
  let rng = Random.State.make [| 271828 |] in
  let fast =
    { Core.Tripath_search.default_options with Core.Tripath_search.max_merges = 1 }
  in
  List.iter
    (fun name ->
      let e = Catalog.find name in
      let report = Core.Dichotomy.classify ~opts:fast e.Catalog.query in
      for _ = 1 to 6 do
        let db = Workload.Randdb.random_for_query rng e.Catalog.query ~n_facts:10 ~domain:3 in
        let answer, alg = Core.Solver.certain report db in
        Alcotest.(check bool)
          (name ^ " pipeline = exact")
          (Cqa.Exact.certain_query e.Catalog.query db)
          answer;
        (* PTIME verdicts must never fall back to exponential algorithms. *)
        match (report.Core.Dichotomy.verdict, alg) with
        | Core.Dichotomy.Ptime _, (Core.Solver.Alg_exact_backtracking | Core.Solver.Alg_exact_sat) ->
            Alcotest.fail (name ^ ": PTIME query solved exponentially")
        | _, _ -> ()
      done)
    [ "q3"; "q4"; "q5"; "q6"; "swap"; "triv-hom" ]

(* The matching-based solver on the Theorem 14 family within the pipeline:
   classified as triangle-only, the solver must answer via the combination. *)
let test_pipeline_triangle_family () =
  let report = Core.Dichotomy.classify q6 in
  (match report.Core.Dichotomy.verdict with
  | Core.Dichotomy.Ptime (Core.Dichotomy.Combined_triangle _) -> ()
  | _ -> Alcotest.fail "q6 must classify as triangle-only");
  for i = 0 to 6 do
    let answer, alg = Core.Solver.certain report (Designs.fano_minus i) in
    Alcotest.(check bool) "certain on fano minus line" true answer;
    match alg with
    | Core.Solver.Alg_combined _ -> ()
    | _ -> Alcotest.fail "expected the combined algorithm"
  done

(* Database text format -> solver, as a user would drive it. *)
let test_parse_and_solve () =
  let db =
    Parse.database_exn
      "# two employees claim the same office\nR[2,1]\nR(1 2)\nR(1 3)\nR(2 1)\nR(3 1)\n"
  in
  let q = Parse.query_exn "R(x | y) R(y | x)" in
  let answer, _ = Core.Solver.certain_query q db in
  Alcotest.(check bool) "certain" true answer;
  Alcotest.(check bool) "exact agrees" true (Cqa.Exact.certain_query q db)

let () =
  Alcotest.run "integration"
    [
      ( "thm14",
        [
          Alcotest.test_case "k=1 witness" `Quick test_thm14_k1_witness;
          Alcotest.test_case "k=2 witness (Fano)" `Quick test_thm14_k2_witness_fano;
          Alcotest.test_case "full Fano not certain" `Quick test_full_fano_not_certain;
        ] );
      ( "prop16",
        [ Alcotest.test_case "rotation systems" `Quick test_prop16_on_rotation_systems ] );
      ( "agreement",
        [
          Alcotest.test_case "all solvers, full catalogue" `Slow test_all_solvers_agree_on_catalog;
          Alcotest.test_case "pipeline vs exact" `Slow test_pipeline_agreement;
          Alcotest.test_case "triangle family pipeline" `Slow test_pipeline_triangle_family;
          Alcotest.test_case "parse and solve" `Quick test_parse_and_solve;
        ] );
    ]
