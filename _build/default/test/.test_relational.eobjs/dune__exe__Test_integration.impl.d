test/test_integration.ml: Alcotest Core Cqa List Qlang Random Workload
