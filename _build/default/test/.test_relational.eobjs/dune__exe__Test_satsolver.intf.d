test/test_satsolver.mli:
