test/test_integration.mli:
