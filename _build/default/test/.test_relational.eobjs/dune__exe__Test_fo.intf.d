test/test_fo.mli:
