test/test_cqa.ml: Alcotest Array Cqa Graphs List QCheck2 QCheck_alcotest Qlang Random Relational Workload
