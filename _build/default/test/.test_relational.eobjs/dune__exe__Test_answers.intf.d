test/test_answers.mli:
