test/test_shell.ml: Alcotest Core Filename Fun List Out_channel String Sys
