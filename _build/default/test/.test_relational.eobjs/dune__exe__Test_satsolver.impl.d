test/test_satsolver.ml: Alcotest Array List QCheck2 QCheck_alcotest Random Satsolver
