test/test_relational.ml: Alcotest List QCheck2 QCheck_alcotest Random Relational Seq
