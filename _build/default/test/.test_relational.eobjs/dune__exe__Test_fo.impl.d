test/test_fo.ml: Alcotest Core Cqa Folog List QCheck2 QCheck_alcotest Qlang Random Relational Workload
