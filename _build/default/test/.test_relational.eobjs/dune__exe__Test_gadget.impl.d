test/test_gadget.ml: Alcotest Core Cqa Format Lazy List Qlang Random Relational Satsolver Workload
