test/test_qlang.ml: Alcotest Array List Option Printf QCheck2 QCheck_alcotest Qlang Random Relational Workload
