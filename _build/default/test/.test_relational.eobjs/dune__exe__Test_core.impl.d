test/test_core.ml: Alcotest Core Cqa Format Int List Option Qlang Random Relational String Workload
