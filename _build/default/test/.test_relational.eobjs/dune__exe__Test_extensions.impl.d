test/test_extensions.ml: Alcotest Core Cqa Format List Option QCheck2 QCheck_alcotest Qlang Random Relational Satsolver String Workload
