test/test_answers.ml: Alcotest Core Cqa List QCheck2 QCheck_alcotest Qlang Random Relational Workload
