test/test_cqa.mli:
