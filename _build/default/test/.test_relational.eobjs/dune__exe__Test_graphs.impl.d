test/test_graphs.ml: Alcotest Graphs List QCheck2 QCheck_alcotest
