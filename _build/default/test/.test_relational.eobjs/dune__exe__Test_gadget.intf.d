test/test_gadget.mli:
