test/test_qlang.mli:
