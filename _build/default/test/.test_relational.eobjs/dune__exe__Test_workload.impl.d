test/test_workload.ml: Alcotest List Option Qlang Random Relational String Workload
