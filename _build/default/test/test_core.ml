(* Tests for the core library: syntactic classification, tripath
   verification and search, the dichotomy classifier and the solver
   front-end. *)

module Parse = Qlang.Parse
module Query = Qlang.Query
module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database
module Syntactic = Core.Syntactic
module Tripath = Core.Tripath
module Search = Core.Tripath_search
module Dichotomy = Core.Dichotomy
module Solver = Core.Solver

let q1 = Workload.Catalog.q1
let q2 = Workload.Catalog.q2
let q3 = Workload.Catalog.q3
let q4 = Workload.Catalog.q4
let q5 = Workload.Catalog.q5
let q6 = Workload.Catalog.q6
let q7 = Workload.Catalog.q7
let vi = Value.int
let fact vs = Fact.make "R" (List.map vi vs)

(* Cheaper search options for tests that only need the paper's examples. *)
let fast = { Search.default_options with Search.max_spine = 2; max_arm = 3; max_merges = 1 }

(* ------------------------------------------------------------------ *)
(* Syntactic tests *)

let test_thm3_conditions () =
  Alcotest.(check bool) "q1 cond1" true (Syntactic.thm3_condition1 q1);
  Alcotest.(check bool) "q1 cond2" true (Syntactic.thm3_condition2 q1);
  Alcotest.(check bool) "q1 hard" true (Syntactic.thm3_conp_hard q1);
  Alcotest.(check bool) "q2 cond1" true (Syntactic.thm3_condition1 q2);
  Alcotest.(check bool) "q2 cond2 fails" false (Syntactic.thm3_condition2 q2);
  Alcotest.(check bool) "q2 not thm3-hard" false (Syntactic.thm3_conp_hard q2)

let test_thm4 () =
  Alcotest.(check bool) "q3" true (Syntactic.thm4_ptime q3);
  Alcotest.(check bool) "q4" true (Syntactic.thm4_ptime q4);
  Alcotest.(check bool) "q7 (as transcribed)" true (Syntactic.thm4_ptime q7);
  Alcotest.(check bool) "q2 not thm4" false (Syntactic.thm4_ptime q2)

let test_two_way_determined () =
  List.iter
    (fun (q, expected, name) ->
      Alcotest.(check bool) name expected (Syntactic.two_way_determined q))
    [
      (q1, false, "q1");
      (q2, true, "q2");
      (q3, false, "q3");
      (q5, true, "q5");
      (q6, true, "q6");
    ]

let test_zigzag_semantic () =
  (* Lemma 5: q3 satisfies the zig-zag property on every database. *)
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 30 do
    let db = Workload.Randdb.random_for_query rng q3 ~n_facts:12 ~domain:3 in
    Alcotest.(check bool) "zig-zag for q3" true (Syntactic.zigzag_holds q3 db)
  done

let test_lemma7_semantic () =
  (* Lemma 7 holds for 2way-determined queries on every database. *)
  let rng = Random.State.make [| 6 |] in
  for _ = 1 to 30 do
    let db = Workload.Randdb.random_for_query rng q6 ~n_facts:12 ~domain:3 in
    Alcotest.(check bool) "lemma 7 for q6" true (Syntactic.lemma7_holds q6 db);
    let db5 = Workload.Randdb.random_for_query rng q5 ~n_facts:12 ~domain:3 in
    Alcotest.(check bool) "lemma 7 for q5" true (Syntactic.lemma7_holds q5 db5)
  done

let test_lemma6_semantic () =
  (* Lemma 6: for zig-zag queries (q3 qualifies by Lemma 5), in every
     database, every repair r with a solution q(ab) has {a} ∈ Δ_2(q, D) or
     admits another repair with strictly fewer solutions. *)
  let rng = Random.State.make [| 66 |] in
  let sols repair =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if Qlang.Solutions.query_solution_pair q3 a b then Some (a, b) else None)
          repair)
      repair
  in
  let subset_strict s1 s2 =
    List.for_all (fun x -> List.mem x s2) s1 && List.length s1 < List.length s2
  in
  for _ = 1 to 25 do
    let db = Workload.Randdb.random_for_query rng q3 ~n_facts:8 ~domain:3 in
    let g = Qlang.Solution_graph.of_query q3 db in
    let minimal = Cqa.Certk.derived ~k:2 g in
    let singleton_in_delta a =
      let ia = Qlang.Solution_graph.index g a in
      List.exists (function [] -> true | [ v ] -> v = ia | _ -> false) minimal
    in
    let repairs = List.of_seq (Relational.Repair.enumerate db) in
    List.iter
      (fun r ->
        List.iter
          (fun (a, _) ->
            let ok =
              singleton_in_delta a
              || List.exists (fun s -> subset_strict (sols s) (sols r)) repairs
            in
            Alcotest.(check bool) "Lemma 6" true ok)
          (sols r))
      repairs
  done

(* ------------------------------------------------------------------ *)
(* Tripath verification *)

let test_hardcoded_tripath_is_nice_fork () =
  match Tripath.niceness Workload.Catalog.q2_nice_fork_tripath with
  | Ok (Tripath.Fork, _) -> ()
  | Ok (Tripath.Triangle, _) -> Alcotest.fail "expected a fork"
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_tripath_check_rejects_broken () =
  (* Corrupt the hardcoded tripath: replace the root with a fact that does
     not form a solution with its child. *)
  let tp = Workload.Catalog.q2_nice_fork_tripath in
  let broken = { tp with Tripath.root = fact [ 100; 101; 102; 103 ] } in
  match Tripath.check broken with
  | Ok _ -> Alcotest.fail "corrupted tripath accepted"
  | Error _ -> ()

let test_tripath_check_rejects_shared_block_keys () =
  let tp = Workload.Catalog.q2_nice_fork_tripath in
  (* Make the root key-equal to the leaf2 block. *)
  let broken = { tp with Tripath.root = tp.Tripath.leaf2 } in
  match Tripath.check broken with
  | Ok _ -> Alcotest.fail "duplicate block keys accepted"
  | Error _ -> ()

let test_tripath_database_blocks () =
  let tp = Workload.Catalog.q2_nice_fork_tripath in
  let db = Tripath.database tp in
  Alcotest.(check int) "block count" (Tripath.n_blocks tp) (List.length (Database.blocks db));
  (* Root and leaves are singleton blocks; all others have two facts. *)
  let sizes = List.map Relational.Block.size (Database.blocks db) |> List.sort Int.compare in
  Alcotest.(check (list int)) "block sizes" [ 1; 1; 1; 2; 2; 2; 2; 2; 2; 2; 2 ] sizes

let test_g_set_cases () =
  (* For the q2 center d = R(a a | a b), e = R(a b | a a), f = R(b a | a c):
     key(d) = {a} ⊆ key(e) = {a,b}, key(f) = {a,b} ⊆ key(e), and
     key(d) ⊆ key(f), so g(e) = key(d) = {a}. *)
  let a = vi 0 and b = vi 1 and c = vi 2 in
  let d = Fact.make "R" [ a; a; a; b ] in
  let e = Fact.make "R" [ a; b; a; a ] in
  let f = Fact.make "R" [ b; a; a; c ] in
  let g = Tripath.g_set q2 ~d ~e ~f in
  Alcotest.(check bool) "g = {a}" true (Value.Set.equal g (Value.Set.singleton a))

let test_g_set_incomparable () =
  (* key(d) and key(f) both inside key(e) but incomparable: g(e) = key(e). *)
  let q = Parse.query_exn "R(x y | z) R(y z | w)" in
  (* synthetic: key(e) = {1,2}; key(d) = {1}; key(f) = {2} *)
  let e = Fact.make "R" [ vi 1; vi 2; vi 9 ] in
  let d = Fact.make "R" [ vi 1; vi 1; vi 9 ] and f = Fact.make "R" [ vi 2; vi 2; vi 8 ] in
  let g = Tripath.g_set q ~d ~e ~f in
  Alcotest.(check bool) "g = key(e)" true
    (Value.Set.equal g (Value.Set.of_list [ vi 1; vi 2 ]))

(* ------------------------------------------------------------------ *)
(* Tripath search *)

let test_search_q2_fork () =
  match Search.find_fork ~opts:fast q2 with
  | Search.Found (tp, Tripath.Fork) -> (
      match Tripath.check tp with
      | Ok Tripath.Fork -> ()
      | Ok Tripath.Triangle -> Alcotest.fail "kind mismatch"
      | Error errs -> Alcotest.fail (String.concat "; " errs))
  | Search.Found (_, Tripath.Triangle) -> Alcotest.fail "wanted a fork"
  | Search.Not_found -> Alcotest.fail "q2 admits a fork-tripath"

let test_search_q5_none () =
  (match Search.find_any ~opts:fast q5 with
  | Search.Not_found -> ()
  | Search.Found _ -> Alcotest.fail "q5 admits no tripath")

let test_search_q6_triangle_only () =
  (match Search.find_triangle ~opts:fast q6 with
  | Search.Found (_, Tripath.Triangle) -> ()
  | Search.Found (_, Tripath.Fork) -> Alcotest.fail "kind mismatch"
  | Search.Not_found -> Alcotest.fail "q6 admits a triangle-tripath");
  match Search.find_fork ~opts:fast q6 with
  | Search.Not_found -> ()
  | Search.Found _ -> Alcotest.fail "q6 admits no fork-tripath"

let test_search_results_verified () =
  (* Whatever the search returns passes the independent verifier. *)
  List.iter
    (fun q ->
      match Search.find_any ~opts:fast q with
      | Search.Not_found -> ()
      | Search.Found (tp, kind) -> (
          match Tripath.check tp with
          | Ok kind' -> Alcotest.(check bool) "kind consistent" true (kind = kind')
          | Error errs -> Alcotest.fail (String.concat "; " errs)))
    [ q2; q5; q6; Workload.Catalog.(find "fork-2").Workload.Catalog.query ]

let test_search_budget_respected () =
  (* A tiny budget must terminate quickly with Not_found, never diverge. *)
  let opts = { Search.default_options with Search.max_candidates = 10 } in
  match Search.find_any ~opts q5 with
  | Search.Not_found -> ()
  | Search.Found _ -> Alcotest.fail "budget 10 cannot find a tripath for q5"

(* ------------------------------------------------------------------ *)
(* Dichotomy *)

let test_classify_catalog () =
  List.iter
    (fun (e : Workload.Catalog.entry) ->
      let r = Dichotomy.classify e.Workload.Catalog.query in
      let matches =
        match (e.Workload.Catalog.expected, r.Dichotomy.verdict) with
        | Workload.Catalog.Exp_trivial, Dichotomy.Ptime (Dichotomy.Trivial _) -> true
        | Workload.Catalog.Exp_conp_sjf, Dichotomy.Conp_complete Dichotomy.Sjf_hard -> true
        | Workload.Catalog.Exp_ptime_cert2, Dichotomy.Ptime Dichotomy.Cert2 -> true
        | Workload.Catalog.Exp_ptime_no_tripath, Dichotomy.Ptime Dichotomy.Certk_no_tripath -> true
        | Workload.Catalog.Exp_conp_fork, Dichotomy.Conp_complete (Dichotomy.Fork_tripath _) -> true
        | Workload.Catalog.Exp_ptime_triangle, Dichotomy.Ptime (Dichotomy.Combined_triangle _) -> true
        | ( ( Workload.Catalog.Exp_trivial | Workload.Catalog.Exp_conp_sjf
            | Workload.Catalog.Exp_ptime_cert2 | Workload.Catalog.Exp_ptime_no_tripath
            | Workload.Catalog.Exp_conp_fork | Workload.Catalog.Exp_ptime_triangle ),
            _ ) ->
            false
      in
      if not matches then
        Alcotest.failf "%s: expected %s, got %s" e.Workload.Catalog.name
          (Format.asprintf "%a" Workload.Catalog.pp_expected e.Workload.Catalog.expected)
          (Dichotomy.verdict_summary r.Dichotomy.verdict))
    Workload.Catalog.all

let test_classify_witnesses_verified () =
  (* The classifier's tripath witnesses must pass the verifier. *)
  let r = Dichotomy.classify q2 in
  (match r.Dichotomy.verdict with
  | Dichotomy.Conp_complete (Dichotomy.Fork_tripath tp) -> (
      match Tripath.check tp with
      | Ok Tripath.Fork -> ()
      | Ok Tripath.Triangle | Error _ -> Alcotest.fail "bad fork witness")
  | _ -> Alcotest.fail "q2 should be fork-hard");
  let r6 = Dichotomy.classify q6 in
  match r6.Dichotomy.verdict with
  | Dichotomy.Ptime (Dichotomy.Combined_triangle tp) -> (
      match Tripath.check tp with
      | Ok Tripath.Triangle -> ()
      | Ok Tripath.Fork | Error _ -> Alcotest.fail "bad triangle witness")
  | _ -> Alcotest.fail "q6 should be triangle-only"

(* ------------------------------------------------------------------ *)
(* Solver front-end *)

let test_conjunction_atom () =
  let q = Parse.query_exn "R(x y | x z) R(x y | z y)" in
  match Solver.conjunction_atom q with
  | None -> Alcotest.fail "conjunction exists"
  | Some c ->
      (* One assignment must match both atoms: A = (x,y,x,z), B = (x,y,z,y).
         Position 2 carries x in A and z in B, position 3 carries z in A and
         y in B — so x, y, z are all forced equal through the positions and
         a matching fact must be constant. *)
      let ok_fact = Fact.make "R" [ vi 1; vi 1; vi 1; vi 1 ] in
      let bad_fact = Fact.make "R" [ vi 1; vi 2; vi 1; vi 2 ] in
      Alcotest.(check bool) "matches the constant fact" true
        (Option.is_some (Qlang.Unify.match_fact Qlang.Subst.empty c ok_fact));
      Alcotest.(check bool) "rejects the almost-matching fact" false
        (Option.is_some (Qlang.Unify.match_fact Qlang.Subst.empty c bad_fact));
      (* Semantic cross-check: ok_fact alone satisfies q, bad_fact does not. *)
      Alcotest.(check bool) "ok_fact satisfies q" true
        (Qlang.Solutions.query_satisfies q [ ok_fact ]);
      Alcotest.(check bool) "bad_fact does not satisfy q" false
        (Qlang.Solutions.query_satisfies q [ bad_fact ])

let test_conjunction_atom_conflict () =
  let q = Parse.query_exn "R(x | 1) R(x | 2)" in
  Alcotest.(check bool) "conflicting constants" true (Solver.conjunction_atom q = None)

let test_certain_one_atom () =
  let q = q3 in
  let atom = q.Query.a in
  let db = Database.of_facts [ q.Query.schema ] [ fact [ 1; 2 ]; fact [ 1; 3 ] ] in
  Alcotest.(check bool) "block of matches" true (Solver.certain_one_atom atom db);
  let atom_c = Qlang.Atom.make "R" [ Qlang.Term.var "x"; Qlang.Term.cst (vi 2) ] in
  Alcotest.(check bool) "constant restricts" false (Solver.certain_one_atom atom_c db)

let test_solver_dispatch () =
  (* The solver picks the algorithm designated by the verdict and answers
     consistently with the exact solver. *)
  let rng = Random.State.make [| 99 |] in
  List.iter
    (fun q ->
      let report = Dichotomy.classify ~opts:fast q in
      for _ = 1 to 10 do
        let db = Workload.Randdb.random_for_query rng q ~n_facts:10 ~domain:3 in
        let answer, _alg = Solver.certain report db in
        Alcotest.(check bool)
          (Format.asprintf "solver agrees with exact on %a" Query.pp q)
          (Cqa.Exact.certain_query q db) answer
      done)
    [ q3; q5; q6; q2 ]

let test_solver_trivial_queries () =
  let q = Parse.query_exn "R(x | y) R(u | v)" in
  let report = Dichotomy.classify q in
  let db = Database.of_facts [ q.Query.schema ] [ fact [ 1; 2 ] ] in
  let answer, alg = Solver.certain report db in
  Alcotest.(check bool) "trivial query certain on nonempty db" true answer;
  (match alg with
  | Solver.Alg_one_atom -> ()
  | _ -> Alcotest.fail "expected the one-atom algorithm");
  let empty = Database.of_facts [ q.Query.schema ] [] in
  Alcotest.(check bool) "not certain on empty db" false (fst (Solver.certain report empty))

let () =
  Alcotest.run "core"
    [
      ( "syntactic",
        [
          Alcotest.test_case "thm3 conditions" `Quick test_thm3_conditions;
          Alcotest.test_case "thm4" `Quick test_thm4;
          Alcotest.test_case "2way-determined" `Quick test_two_way_determined;
          Alcotest.test_case "zig-zag semantic" `Quick test_zigzag_semantic;
          Alcotest.test_case "lemma 6 semantic" `Quick test_lemma6_semantic;
          Alcotest.test_case "lemma 7 semantic" `Quick test_lemma7_semantic;
        ] );
      ( "tripath",
        [
          Alcotest.test_case "hardcoded nice fork" `Quick test_hardcoded_tripath_is_nice_fork;
          Alcotest.test_case "rejects broken" `Quick test_tripath_check_rejects_broken;
          Alcotest.test_case "rejects shared keys" `Quick test_tripath_check_rejects_shared_block_keys;
          Alcotest.test_case "database blocks" `Quick test_tripath_database_blocks;
          Alcotest.test_case "g(e) subset case" `Quick test_g_set_cases;
          Alcotest.test_case "g(e) incomparable case" `Quick test_g_set_incomparable;
        ] );
      ( "search",
        [
          Alcotest.test_case "q2 fork" `Quick test_search_q2_fork;
          Alcotest.test_case "q5 none" `Slow test_search_q5_none;
          Alcotest.test_case "q6 triangle only" `Slow test_search_q6_triangle_only;
          Alcotest.test_case "results verified" `Slow test_search_results_verified;
          Alcotest.test_case "budget respected" `Quick test_search_budget_respected;
        ] );
      ( "dichotomy",
        [
          Alcotest.test_case "catalog" `Slow test_classify_catalog;
          Alcotest.test_case "witnesses verified" `Slow test_classify_witnesses_verified;
        ] );
      ( "solver",
        [
          Alcotest.test_case "conjunction atom" `Quick test_conjunction_atom;
          Alcotest.test_case "conjunction conflict" `Quick test_conjunction_atom_conflict;
          Alcotest.test_case "one-atom certain" `Quick test_certain_one_atom;
          Alcotest.test_case "dispatch" `Slow test_solver_dispatch;
          Alcotest.test_case "trivial queries" `Quick test_solver_trivial_queries;
        ] );
    ]
