(* Tests for the workload library: catalogue integrity and the random
   database generators. *)

module Catalog = Workload.Catalog
module Randdb = Workload.Randdb
module Database = Relational.Database
module Query = Qlang.Query
module Schema = Relational.Schema

let test_catalog_names_unique () =
  let names = List.map (fun (e : Catalog.entry) -> e.Catalog.name) Catalog.all in
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_catalog_queries_well_formed () =
  List.iter
    (fun (e : Catalog.entry) ->
      let q = e.Catalog.query in
      Alcotest.(check bool)
        (e.Catalog.name ^ " atoms fit schema")
        true
        (Qlang.Atom.fits q.Query.schema q.Query.a
        && Qlang.Atom.fits q.Query.schema q.Query.b))
    Catalog.all

let test_catalog_find () =
  let e = Catalog.find "q2" in
  Alcotest.(check bool) "q2 retrieved" true (Query.equal e.Catalog.query Catalog.q2);
  Alcotest.(check bool) "unknown name" true
    (try
       ignore (Catalog.find "nope");
       false
     with Not_found -> true)

let test_catalog_non_trivial () =
  (* Every non-"triv" entry must be a genuine two-atom query. *)
  List.iter
    (fun (e : Catalog.entry) ->
      let trivial = Option.is_some (Query.triviality e.Catalog.query) in
      let expected_trivial = e.Catalog.expected = Catalog.Exp_trivial in
      Alcotest.(check bool) (e.Catalog.name ^ " triviality") expected_trivial trivial)
    Catalog.all

let test_random_db_deterministic () =
  let mk () =
    Randdb.random (Random.State.make [| 1; 2 |])
      (Schema.make ~name:"R" ~arity:2 ~key_len:1)
      ~n_facts:20 ~domain:4
  in
  Alcotest.(check bool) "same seed, same database" true (Database.equal (mk ()) (mk ()))

let test_random_db_schema () =
  let rng = Random.State.make [| 3 |] in
  let db = Randdb.random_for_query rng Catalog.q6 ~n_facts:30 ~domain:4 in
  List.iter
    (fun f ->
      Alcotest.(check int) "arity" 3 (Relational.Fact.arity f);
      Alcotest.(check string) "relation" "R" f.Relational.Fact.rel)
    (Database.facts db)

let test_random_db_has_solutions_sometimes () =
  (* The planted generator should produce solution-rich instances. *)
  let rng = Random.State.make [| 4 |] in
  let hits = ref 0 in
  for _ = 1 to 20 do
    let db = Randdb.random_for_query rng Catalog.q3 ~n_facts:20 ~domain:3 in
    if Qlang.Solutions.query_pairs Catalog.q3 db <> [] then incr hits
  done;
  Alcotest.(check bool) "solutions appear" true (!hits > 10)

let test_random_sjf_two_relations () =
  let rng = Random.State.make [| 5 |] in
  let s = Qlang.Sjf.of_query Catalog.q2 in
  let db = Randdb.random_sjf rng s ~n_facts:20 ~domain:3 in
  let rels =
    List.map (fun (f : Relational.Fact.t) -> f.Relational.Fact.rel) (Database.facts db)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "both relations populated" [ "R1"; "R2" ] rels

let () =
  Alcotest.run "workload"
    [
      ( "catalog",
        [
          Alcotest.test_case "names unique" `Quick test_catalog_names_unique;
          Alcotest.test_case "well-formed" `Quick test_catalog_queries_well_formed;
          Alcotest.test_case "find" `Quick test_catalog_find;
          Alcotest.test_case "triviality labels" `Quick test_catalog_non_trivial;
        ] );
      ( "randdb",
        [
          Alcotest.test_case "deterministic" `Quick test_random_db_deterministic;
          Alcotest.test_case "schema conformance" `Quick test_random_db_schema;
          Alcotest.test_case "solution-rich" `Quick test_random_db_has_solutions_sometimes;
          Alcotest.test_case "sjf relations" `Quick test_random_sjf_two_relations;
        ] );
    ]
