(* Tests for the CERTAIN solvers: the exact baselines against each other and
   against repair enumeration, soundness of Cert_k and ¬Matching, exactness
   of Cert_2 on the Theorem 4 class, exactness of ¬Matching on clique
   databases, and the SAT-based solver. *)

module Database = Relational.Database
module Fact = Relational.Fact
module Value = Relational.Value
module Schema = Relational.Schema
module Query = Qlang.Query
module Parse = Qlang.Parse
module Solution_graph = Qlang.Solution_graph
module Solutions = Qlang.Solutions

let vi = Value.int
let fact vs = Fact.make "R" (List.map vi vs)
let q3 = Parse.query_exn "R(x | y) R(y | z)"
let q6 = Parse.query_exn "R(x | y z) R(z | x y)"

let db_of q facts =
  Database.of_facts [ q.Query.schema ] facts

let rng = Random.State.make [| 2024 |]

let random_db q ~n ~domain = Workload.Randdb.random_for_query rng q ~n_facts:n ~domain

(* ------------------------------------------------------------------ *)
(* Exact solvers *)

let test_exact_simple_certain () =
  (* Single block where every fact closes a cycle with a consistent fact. *)
  let db = db_of q3 [ fact [ 1; 2 ]; fact [ 2; 1 ]; fact [ 2; 3 ]; fact [ 3; 2 ] ] in
  (* blocks: {12}, {21,23}, {32}. Any repair contains 1->2 and either 2->1 or
     2->3; both complete a solution with 1->2 or 3->2 resp.? 2->3 with 3->2:
     q(2->3, 3->2) needs y=3 shared: R(2|3), R(3|2): yes. q(1->2, 2->1): yes. *)
  Alcotest.(check bool) "certain" true (Cqa.Exact.certain_query q3 db);
  Alcotest.(check bool) "enumeration agrees" true (Cqa.Exact.certain_enum q3 db)

let test_exact_simple_not_certain () =
  let db = db_of q3 [ fact [ 1; 2 ]; fact [ 1; 5 ]; fact [ 2; 3 ] ] in
  (* Repair {1->5, 2->3} has no solution. *)
  Alcotest.(check bool) "not certain" false (Cqa.Exact.certain_query q3 db);
  Alcotest.(check bool) "enumeration agrees" false (Cqa.Exact.certain_enum q3 db)

let test_exact_empty_db () =
  Alcotest.(check bool) "empty db not certain" false (Cqa.Exact.certain_query q3 (db_of q3 []))

let test_falsifying_repair_is_independent () =
  let db = random_db q3 ~n:20 ~domain:4 in
  let g = Solution_graph.of_query q3 db in
  match Cqa.Exact.falsifying_repair g with
  | None -> ()
  | Some picks ->
      Alcotest.(check int) "one per block" (Solution_graph.n_blocks g) (List.length picks);
      let facts = List.map (fun i -> g.Solution_graph.facts.(i)) picks in
      Alcotest.(check bool) "repair falsifies q" false (Solutions.query_satisfies q3 facts)

let prop_exact_agrees_with_enumeration =
  QCheck2.Test.make ~name:"backtracking = enumeration oracle (q3)" ~count:150
    QCheck2.Gen.(
      let* n = int_range 0 10 in
      let* ks = list_size (return n) (int_range 0 3) in
      let* vs = list_size (return n) (int_range 0 4) in
      return (List.map2 (fun k v -> fact [ k; v ]) ks vs))
    (fun facts ->
      let db = db_of q3 facts in
      Cqa.Exact.certain_query q3 db = Cqa.Exact.certain_enum q3 db)

let prop_exact_agrees_q6 =
  QCheck2.Test.make ~name:"backtracking = enumeration oracle (q6)" ~count:100
    QCheck2.Gen.(
      let* n = int_range 0 9 in
      let* tuples = list_size (return n) (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) tuples))
    (fun facts ->
      let db = db_of q6 facts in
      Cqa.Exact.certain_query q6 db = Cqa.Exact.certain_enum q6 db)

(* ------------------------------------------------------------------ *)
(* Cert_k *)

let test_certk_requires_positive_k () =
  let g = Solution_graph.of_query q3 (db_of q3 []) in
  Alcotest.(check bool) "k = 0 rejected" true
    (try
       ignore (Cqa.Certk.run ~k:0 g);
       false
     with Invalid_argument _ -> true)

let test_certk_kappa () =
  Alcotest.(check int) "kappa for l=1" 1 (Cqa.Certk.kappa q3);
  Alcotest.(check int) "paper k for l=1" 8 (Cqa.Certk.paper_k q3);
  let q2 = Parse.query_exn "R(x u | x y) R(u y | x z)" in
  Alcotest.(check int) "kappa for l=2" 4 (Cqa.Certk.kappa q2);
  Alcotest.(check int) "paper k for l=2" 515 (Cqa.Certk.paper_k q2)

let test_certk_simple_yes () =
  let db = db_of q3 [ fact [ 1; 2 ]; fact [ 2; 1 ] ] in
  Alcotest.(check bool) "certain by Cert_2" true (Cqa.Certk.certain_query ~k:2 q3 db)

let test_certk_derived_minimal_sets () =
  let db = db_of q3 [ fact [ 1; 2 ]; fact [ 2; 3 ] ] in
  let g = Solution_graph.of_query q3 db in
  let derived = Cqa.Certk.derived ~k:2 g in
  (* The pair {1->2, 2->3} is the only minimal satisfying set, and both
     blocks are singletons so the empty set is eventually derived. *)
  Alcotest.(check bool) "empty set derived" true (List.mem [] derived)

let prop_certk_sound =
  (* Cert_k is an under-approximation of CERTAIN for every k and query. *)
  QCheck2.Test.make ~name:"Cert_k implies CERTAIN (q3, q6; k in 1..3)" ~count:120
    QCheck2.Gen.(
      let* n = int_range 0 9 in
      let* which = bool in
      let* ks = list_size (return n) (int_range 0 3) in
      let* vs = list_size (return n) (int_range 0 3) in
      let* ws = list_size (return n) (int_range 0 3) in
      let* k = int_range 1 3 in
      return (which, k, List.combine (List.combine ks vs) ws))
    (fun (which, k, rows) ->
      let q = if which then q3 else q6 in
      let facts =
        List.map
          (fun ((a, b), c) -> if which then fact [ a; b ] else fact [ a; b; c ])
          rows
      in
      let db = db_of q facts in
      (not (Cqa.Certk.certain_query ~k q db)) || Cqa.Exact.certain_query q db)

let prop_cert2_exact_on_thm4_class =
  (* Theorem 4: for q3 (shared variable inside key(B)), Cert_2 = CERTAIN. *)
  QCheck2.Test.make ~name:"Cert_2 = CERTAIN for q3 (Theorem 4)" ~count:200
    QCheck2.Gen.(
      let* n = int_range 0 12 in
      let* ks = list_size (return n) (int_range 0 3) in
      let* vs = list_size (return n) (int_range 0 4) in
      return (List.map2 (fun k v -> fact [ k; v ]) ks vs))
    (fun facts ->
      let db = db_of q3 facts in
      Cqa.Certk.certain_query ~k:2 q3 db = Cqa.Exact.certain_query q3 db)

let prop_cert2_exact_on_q4 =
  let q4 = Parse.query_exn "R(x x | y) R(x y | y)" in
  QCheck2.Test.make ~name:"Cert_2 = CERTAIN for q4 (Theorem 4)" ~count:150
    QCheck2.Gen.(
      let* n = int_range 0 10 in
      let* tuples = list_size (return n) (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) tuples))
    (fun facts ->
      let db = db_of q4 facts in
      Cqa.Certk.certain_query ~k:2 q4 db = Cqa.Exact.certain_query q4 db)

(* ------------------------------------------------------------------ *)
(* Matching *)

let test_matching_simple () =
  (* Single-block database whose only fact is a self-solution: no saturating
     matching can exist, hence certain. *)
  let db = db_of q3 [ fact [ 7; 7 ] ] in
  let g = Solution_graph.of_query q3 db in
  Alcotest.(check bool) "no saturating matching" false (Cqa.Matching_alg.run g);
  Alcotest.(check bool) "hence certain" true (Cqa.Exact.certain g)

let test_matching_bipartite_shape () =
  let db = db_of q6 [ fact [ 1; 2; 3 ]; fact [ 1; 5; 6 ]; fact [ 9; 9; 9 ] ] in
  let g = Solution_graph.of_query q6 db in
  let h = Cqa.Matching_alg.bipartite g in
  Alcotest.(check int) "left side = blocks" (Solution_graph.n_blocks g) h.Graphs.Bipartite.n_left

let prop_matching_sound =
  (* ¬Matching implies CERTAIN (Proposition 15) for a 2way-determined query. *)
  QCheck2.Test.make ~name:"not MATCHING implies CERTAIN (q6, Prop 15)" ~count:150
    QCheck2.Gen.(
      let* n = int_range 0 9 in
      let* tuples = list_size (return n) (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) tuples))
    (fun facts ->
      let db = db_of q6 facts in
      let g = Solution_graph.of_query q6 db in
      Cqa.Matching_alg.run g || Cqa.Exact.certain g)

let prop_matching_exact_on_clique_query =
  (* Theorem 17: q6 is a clique-query, so ¬Matching = CERTAIN. *)
  QCheck2.Test.make ~name:"not MATCHING = CERTAIN for q6 (Theorem 17)" ~count:200
    QCheck2.Gen.(
      let* n = int_range 0 10 in
      let* tuples = list_size (return n) (triple (int_range 0 3) (int_range 0 3) (int_range 0 3)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) tuples))
    (fun facts ->
      let db = db_of q6 facts in
      let g = Solution_graph.of_query q6 db in
      Alcotest.(check bool) "q6 yields clique databases" true (Solution_graph.is_clique_database g);
      (not (Cqa.Matching_alg.run g)) = Cqa.Exact.certain g)

(* ------------------------------------------------------------------ *)
(* Combined and SAT *)

let prop_combined_sound =
  QCheck2.Test.make ~name:"combined algorithm implies CERTAIN" ~count:150
    QCheck2.Gen.(
      let* n = int_range 0 9 in
      let* tuples = list_size (return n) (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) tuples))
    (fun facts ->
      let db = db_of q6 facts in
      (not (Cqa.Combined.certain_query ~k:2 q6 db)) || Cqa.Exact.certain_query q6 db)

let prop_combined_exact_q6 =
  (* Theorem 18 for q6: the combination is exact (here already thanks to the
     matching side). *)
  QCheck2.Test.make ~name:"combined = CERTAIN for q6 (Theorem 18)" ~count:150
    QCheck2.Gen.(
      let* n = int_range 0 9 in
      let* tuples = list_size (return n) (triple (int_range 0 3) (int_range 0 3) (int_range 0 3)) in
      return (List.map (fun (a, b, c) -> fact [ a; b; c ]) tuples))
    (fun facts ->
      let db = db_of q6 facts in
      Cqa.Combined.certain_query ~k:2 q6 db = Cqa.Exact.certain_query q6 db)

let prop_sat_equals_backtracking =
  QCheck2.Test.make ~name:"SAT solver = backtracking solver" ~count:150
    QCheck2.Gen.(
      let* which = bool in
      let* n = int_range 0 10 in
      let* ks = list_size (return n) (int_range 0 3) in
      let* vs = list_size (return n) (int_range 0 3) in
      let* ws = list_size (return n) (int_range 0 3) in
      return (which, List.combine (List.combine ks vs) ws))
    (fun (which, rows) ->
      let q = if which then q3 else q6 in
      let facts =
        List.map (fun ((a, b), c) -> if which then fact [ a; b ] else fact [ a; b; c ]) rows
      in
      let db = db_of q facts in
      let g = Solution_graph.of_query q db in
      Cqa.Satreduce.certain g = Cqa.Exact.certain g)

let test_sat_falsifying_repair_valid () =
  let db = random_db q3 ~n:16 ~domain:4 in
  let g = Solution_graph.of_query q3 db in
  match Cqa.Satreduce.falsifying_repair g with
  | None -> Alcotest.(check bool) "certain then" true (Cqa.Exact.certain g)
  | Some picks ->
      let facts = List.map (fun i -> g.Solution_graph.facts.(i)) picks in
      Alcotest.(check bool) "picks falsify" false (Solutions.query_satisfies q3 facts)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cqa"
    [
      ( "exact",
        [
          Alcotest.test_case "certain" `Quick test_exact_simple_certain;
          Alcotest.test_case "not certain" `Quick test_exact_simple_not_certain;
          Alcotest.test_case "empty db" `Quick test_exact_empty_db;
          Alcotest.test_case "falsifier independent" `Quick test_falsifying_repair_is_independent;
        ]
        @ qt [ prop_exact_agrees_with_enumeration; prop_exact_agrees_q6 ] );
      ( "certk",
        [
          Alcotest.test_case "k validation" `Quick test_certk_requires_positive_k;
          Alcotest.test_case "kappa / paper k" `Quick test_certk_kappa;
          Alcotest.test_case "simple yes" `Quick test_certk_simple_yes;
          Alcotest.test_case "minimal sets" `Quick test_certk_derived_minimal_sets;
        ]
        @ qt [ prop_certk_sound; prop_cert2_exact_on_thm4_class; prop_cert2_exact_on_q4 ] );
      ( "matching",
        [
          Alcotest.test_case "self-loop block" `Quick test_matching_simple;
          Alcotest.test_case "bipartite shape" `Quick test_matching_bipartite_shape;
        ]
        @ qt [ prop_matching_sound; prop_matching_exact_on_clique_query ] );
      ( "combined+sat",
        [ Alcotest.test_case "sat falsifier" `Quick test_sat_falsifying_repair_valid ]
        @ qt [ prop_combined_sound; prop_combined_exact_q6; prop_sat_equals_backtracking ] );
    ]
