(* Visualising consistency: export solution graphs and repairs as Graphviz
   DOT files. Writes into ./_viz; render with e.g.
     dot -Tsvg _viz/mentors.dot -o mentors.svg

   Run with: dune exec examples/visualize.exe *)

let write path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Format.printf "wrote %s@." path

let () =
  let dir = "_viz" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;

  (* 1. The mentoring database of the data-integration example. *)
  let q = Qlang.Parse.query_exn "M(x | y) M(y | x)" in
  let db =
    Qlang.Parse.database_exn
      {|M[2,1]
        M(ada grace)
        M(ada hedy)
        M(grace ada)
        M(linus dennis)
        M(dennis ken)
        M(ken linus)|}
  in
  let g = Qlang.Solution_graph.of_query q db in
  write (Filename.concat dir "mentors.dot") (Qlang.Dot.solution_graph ~name:"mentors" g);
  (match Cqa.Satreduce.falsifying_repair g with
  | Some repair ->
      write
        (Filename.concat dir "mentors_repair.dot")
        (Qlang.Dot.highlight_repair ~name:"falsifying_repair" g repair)
  | None -> Format.printf "no falsifying repair to draw@.");

  (* 2. A Theorem 14 instance: the Fano plane minus a line for q6. The
     solution graph is a disjoint union of rotation 3-cliques; no choice of
     one fact per block avoids them all. *)
  let g6 =
    Qlang.Solution_graph.of_query Workload.Catalog.q6 (Workload.Designs.fano_minus 0)
  in
  write (Filename.concat dir "fano_minus.dot") (Qlang.Dot.solution_graph ~name:"fano" g6);

  (* 3. The q2 nice fork-tripath as a database, with directed solutions. *)
  let tp = Workload.Catalog.q2_nice_fork_tripath in
  let gtp =
    Qlang.Solution_graph.of_query Workload.Catalog.q2 (Core.Tripath.database tp)
  in
  write
    (Filename.concat dir "tripath_q2.dot")
    (Qlang.Dot.solution_graph ~name:"tripath" ~directed:true gtp);
  Format.printf "render with: dot -Tsvg %s/<file>.dot -o out.svg@." dir
