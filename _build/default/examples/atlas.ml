(* The dichotomy landscape: enumerate EVERY two-atom self-join query over a
   small signature (up to variable renaming and atom order) and classify each
   one. The paper proves the classification is effective; this example runs
   it wholesale.

   Run with: dune exec examples/atlas.exe [arity] [key_len]
   Default signature: [3, 1] (117 queries, a few seconds). *)

let () =
  let arity, key_len =
    match Array.to_list Sys.argv with
    | _ :: a :: k :: _ -> (int_of_string a, int_of_string k)
    | _ :: a :: _ -> (int_of_string a, 1)
    | _ -> (3, 1)
  in
  Format.printf "signature [%d, %d]@." arity key_len;
  let queries = Core.Atlas.enumerate ~arity ~key_len in
  Format.printf "%d canonical queries@.@." (List.length queries);
  let entries = Core.Atlas.classify_all queries in
  Format.printf "%a@.@." Core.Atlas.pp_summary (Core.Atlas.summarize entries);
  (* Show the interesting (non-trivial, non-Theorem-4) queries in full. *)
  Format.printf "the 2way-determined queries of this signature:@.";
  List.iter
    (fun (e : Core.Atlas.entry) ->
      if e.Core.Atlas.report.Core.Dichotomy.two_way_determined then
        Format.printf "  %-36s %s@."
          (Qlang.Query.to_string e.Core.Atlas.query)
          (Core.Dichotomy.verdict_summary e.Core.Atlas.report.Core.Dichotomy.verdict))
    entries;
  Format.printf
    "@.Every verdict above is produced by the paper's decision procedure: \
     triviality,@.Theorem 3/4 syntactic tests, then the tripath search for \
     the 2way-determined rest.@."
