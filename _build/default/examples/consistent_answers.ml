(* Non-Boolean consistent query answering: certain answer TUPLES.

   A shipment-tracking relation Route(shipment | from to) records each
   shipment's single leg (primary key = shipment id). Two scanners disagree
   about some shipments. The query asks for pairs of shipments forming a
   relay — the second leg starts where the first ends:

     q(s, t) = Route(s | a b) ∧ Route(t | b c)

   With free variables the dichotomy machinery still applies: each candidate
   tuple grounds the query, grounded queries are classified (cached per
   coincidence pattern) and solved by the designated algorithm.

   Run with: dune exec examples/consistent_answers.exe *)

module V = Relational.Value

let q = Qlang.Parse.query_exn "Route(s | a b) Route(t | b c)"

let fact ship from_ to_ =
  Relational.Fact.make "Route" [ V.str ship; V.str from_; V.str to_ ]

let db =
  Relational.Database.of_facts
    [ q.Qlang.Query.schema ]
    [
      (* scanner 1 *)
      fact "s1" "lyon" "paris";
      fact "s2" "paris" "lille";
      fact "s3" "nice" "lyon";
      (* scanner 2 disagrees about s2's leg and adds s4 *)
      fact "s2" "marseille" "lille";
      fact "s4" "paris" "brest";
    ]

let () =
  Format.printf "query: %a@." Qlang.Query.pp q;
  Format.printf "database (%d facts, consistent: %b):@.%a@.@."
    (Relational.Database.size db)
    (Relational.Database.is_consistent db)
    Relational.Database.pp db;
  let free = [ "s"; "t" ] in
  let results = Core.Answers.evaluate ~free q db in
  Format.printf "%-14s %-9s@." "relay (s, t)" "certain";
  List.iter
    (fun (a : Core.Answers.t) ->
      Format.printf "%-14s %-9b@."
        (String.concat ", " (List.map V.to_string a.Core.Answers.tuple))
        a.Core.Answers.certain)
    results;
  Format.printf
    "@.(s3, s1) is certain: both scanners agree on those legs. (s1, s2) is \
     only@.possible: scanner 2 claims s2 departs from marseille, so in some \
     repairs the@.relay breaks. (s1, s4) is certain: s4 departs from paris \
     in every repair.@.@.";
  (* The same data through a session: retract scanner 2's claim and watch
     (s1, s2) become certain. *)
  let grounded =
    Core.Answers.ground ~free q [ V.str "s1"; V.str "s2" ]
  in
  let session = Core.Session.create grounded db in
  Format.printf "certain(q(s1, s2)) initially: %b@." (fst (Core.Session.certain session));
  let session' =
    Core.Session.remove_fact session (fact "s2" "marseille" "lille")
  in
  Format.printf "after retracting Route(s2 | marseille lille): %b@."
    (fst (Core.Session.certain session'))
