(* The dichotomy at a glance: classify the paper's query catalogue (q1..q7
   plus extra examples of every class) and, for the tractable queries,
   cross-check the designated polynomial algorithm against the exact solver
   on random inconsistent databases.

   Run with: dune exec examples/dichotomy_catalog.exe *)

let line = String.make 100 '-'

let () =
  Format.printf "%s@.%-18s %-45s %s@.%s@." line "name" "query" "verdict" line;
  let rng = Random.State.make [| 2024 |] in
  List.iter
    (fun (e : Workload.Catalog.entry) ->
      let q = e.Workload.Catalog.query in
      let report = Core.Dichotomy.classify q in
      Format.printf "%-18s %-45s %s@." e.Workload.Catalog.name
        (Qlang.Query.to_string q)
        (Core.Dichotomy.verdict_summary report.Core.Dichotomy.verdict);
      (* Validate the designated algorithm against ground truth on a few
         random small instances. *)
      let agreements = ref 0 in
      let trials = 20 in
      for _ = 1 to trials do
        let db = Workload.Randdb.random_for_query rng q ~n_facts:10 ~domain:3 in
        let answer, _ = Core.Solver.certain report db in
        if answer = Cqa.Exact.certain_query q db then incr agreements
      done;
      Format.printf "%-18s agreement with exact solver on %d random databases: %d/%d@."
        "" trials !agreements trials)
    Workload.Catalog.all;
  Format.printf "%s@." line;
  Format.printf
    "@.The verdicts reproduce the paper's analysis: q1 and q2 are \
     coNP-complete,@.q3/q4 fall to Theorem 4 (Cert_2), q5 has no tripath \
     (Theorem 9), and q6 needs@.the matching combination of Theorem 18. See \
     EXPERIMENTS.md, experiment E1.@."
