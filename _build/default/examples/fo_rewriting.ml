(* Cert_2 as an inflationary first-order fixpoint.

   Section 5 of the paper notes that the greedy fixpoint algorithm's
   "initial and inductive steps can be expressed in FO". This example prints
   the actual FO update formulas and runs the resulting model-checking
   fixpoint side by side with the two other Cert_2 implementations (the
   optimised antichain version and the literal textbook fixpoint).

   Run with: dune exec examples/fo_rewriting.exe *)

let () =
  let step0, step1, step2 = Cqa.Certk_fo.formulas () in
  Format.printf "FO update formulas over the vocabulary {Sol/2, SameBlock/2, Delta0/0, Delta1/1, Delta2/2}:@.@.";
  Format.printf "  Delta0    <-  %a@." Folog.Formula.pp step0;
  Format.printf "  Delta1(x) <-  %a@." Folog.Formula.pp step1;
  Format.printf "  Delta2(x,y) <-  %a@.@." Folog.Formula.pp step2;

  let show name q db =
    let g = Qlang.Solution_graph.of_query q db in
    let fo = Cqa.Certk_fo.run g in
    let antichain = Cqa.Certk.run ~k:2 g in
    let naive = Cqa.Certk_naive.run ~k:2 g in
    let exact = Cqa.Exact.certain g in
    Format.printf "%-24s FO=%b antichain=%b naive=%b  (CERTAIN=%b)@." name fo antichain
      naive exact
  in
  let q3 = Workload.Catalog.q3 in
  show "path, consistent" q3 (Qlang.Parse.database_exn "R[2,1]\nR(1 2)\nR(2 3)");
  show "path, conflicting" q3 (Qlang.Parse.database_exn "R[2,1]\nR(1 2)\nR(1 9)\nR(2 3)");
  show "q6, two orientations" Workload.Catalog.q6 Workload.Designs.two_orientations;
  show "q6, fano minus line" Workload.Catalog.q6 (Workload.Designs.fano_minus 0);
  Format.printf
    "@.All three implementations agree everywhere (property-tested); on the \
     Fano@.instance Cert_2 answers no although the query is certain — \
     Theorem 14's point.@."
