examples/data_integration.ml: Array Core Cqa Format List Qlang Relational
