examples/consistent_answers.mli:
