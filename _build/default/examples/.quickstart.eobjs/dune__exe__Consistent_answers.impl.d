examples/consistent_answers.ml: Core Format List Qlang Relational String
