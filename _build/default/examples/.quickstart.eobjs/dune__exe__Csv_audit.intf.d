examples/csv_audit.mli:
