examples/dichotomy_catalog.ml: Core Cqa Format List Qlang Random String Workload
