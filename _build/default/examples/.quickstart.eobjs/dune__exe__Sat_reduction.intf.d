examples/sat_reduction.mli:
