examples/visualize.mli:
