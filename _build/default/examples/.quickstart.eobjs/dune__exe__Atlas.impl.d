examples/atlas.ml: Array Core Format List Qlang Sys
