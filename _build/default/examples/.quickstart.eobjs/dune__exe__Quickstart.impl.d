examples/quickstart.ml: Core Format List Qlang Relational Seq String
