examples/fo_rewriting.ml: Cqa Folog Format Qlang Workload
