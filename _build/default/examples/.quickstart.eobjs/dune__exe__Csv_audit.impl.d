examples/csv_audit.ml: Core Cqa Format In_channel List Qlang Random Relational Sys
