examples/sat_reduction.ml: Core Cqa Format List Qlang Random Relational Satsolver Workload
