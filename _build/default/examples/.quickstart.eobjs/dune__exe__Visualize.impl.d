examples/visualize.ml: Core Cqa Filename Format Fun Qlang Sys Workload
