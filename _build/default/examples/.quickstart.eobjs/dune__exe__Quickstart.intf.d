examples/quickstart.mli:
