examples/dichotomy_catalog.mli:
