examples/fo_rewriting.mli:
