examples/atlas.mli:
