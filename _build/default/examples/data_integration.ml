(* A data-integration scenario, the paper's motivating setting: several
   sources are merged into one relation with a primary key; the sources
   disagree, and we refuse to make arbitrary cleaning choices. Instead we ask
   which answers are *certain* — true no matter how the conflicts are
   resolved.

   Mentors(person | mentor): each person has exactly one assigned mentor
   (primary key = person), but the HR export and the team wiki disagree.

   The query: "is somebody their own mentor's mentor?" —
   ∃x y. Mentors(x | y) ∧ Mentors(y | x), the 2way-determined query
   R(x | y) ∧ R(y | x), which the dichotomy puts in PTIME via Cert_k
   (no tripath). We also ask the path query R(x | y) ∧ R(y | z)
   ("a mentoring chain of length two"), PTIME via Cert_2.

   Run with: dune exec examples/data_integration.exe *)

module Db = Relational.Database
module V = Relational.Value

let mentors = Qlang.Parse.query_exn "M(x | y) M(y | x)"
let chain = Qlang.Parse.query_exn "M(x | y) M(y | z)"

let fact person mentor = Relational.Fact.make "M" [ V.str person; V.str mentor ]

let source_hr =
  [ fact "ada" "grace"; fact "grace" "ada"; fact "linus" "dennis"; fact "dennis" "ken" ]

let source_wiki =
  [ fact "ada" "hedy"; fact "linus" "dennis"; fact "ken" "linus" ]

let () =
  let schema = mentors.Qlang.Query.schema in
  let db = Db.of_facts [ schema ] (source_hr @ source_wiki) in
  Format.printf "merged database (%d facts, consistent: %b):@.%a@.@." (Db.size db)
    (Db.is_consistent db) Db.pp db;
  Format.printf "conflicting keys:@.";
  List.iter
    (fun (b : Relational.Block.t) ->
      if Relational.Block.size b > 1 then
        Format.printf "  %a@." Relational.Block.pp b)
    (Db.blocks db);
  Format.printf "repairs: %s@.@."
    (match Relational.Repair.count db with
    | Some n -> string_of_int n
    | None -> "overflow");

  List.iter
    (fun (name, q) ->
      let report = Core.Dichotomy.classify q in
      let answer, algorithm = Core.Solver.certain report db in
      Format.printf "%s: %a@.  %s@.  certain: %b (via %a)@.@." name Qlang.Query.pp q
        (Core.Dichotomy.verdict_summary report.Core.Dichotomy.verdict)
        answer Core.Solver.pp_algorithm algorithm)
    [ ("mutual mentoring", mentors); ("mentoring chain", chain) ];

  (* Mutual mentoring is NOT certain: the only candidate cycle is
     ada <-> grace, and the wiki's ada -> hedy breaks it in some repairs.
     The chain query IS certain: every repair keeps linus -> dennis, and
     dennis -> ken closes a chain in all of them. *)
  (match Cqa.Satreduce.falsifying_repair (Qlang.Solution_graph.of_query mentors db) with
  | Some picks ->
      let g = Qlang.Solution_graph.of_query mentors db in
      Format.printf "a repair with no mutual mentoring:@.";
      List.iter (fun i -> Format.printf "  %a@." Relational.Fact.pp g.Qlang.Solution_graph.facts.(i)) picks
  | None -> Format.printf "mutual mentoring holds in every repair.@.");

  (* What would it take to make mutual mentoring certain? Drop the wiki's
     claim about ada. *)
  let db' = Db.remove db (fact "ada" "hedy") in
  let answer, _ = Core.Solver.certain_query mentors db' in
  Format.printf "@.after retracting M(ada | hedy): mutual mentoring certain = %b@." answer
