(** Repairs of an inconsistent database.

    A repair is a subset-maximal consistent subset of a database: it picks
    exactly one fact from every block. A database with blocks of sizes
    [m1, ..., mp] has exactly [m1 * ... * mp] repairs, which is exponential in
    general; this module provides lazy enumeration, counting, sampling and
    quantification with early exit. *)

type t = Fact.t list
(** A repair as a list of facts, one per block, sorted by {!Fact.compare}. *)

(** [count db] is the number of repairs of [db]. Returns [None] on overflow
    beyond [max_int]. The empty database has exactly one (empty) repair. *)
val count : Database.t -> int option

(** Lazy enumeration of all repairs. *)
val enumerate : Database.t -> t Seq.t

(** [is_repair db r] checks that [r] is a repair of [db]: consistent, subset
    of [db], and containing one fact from every block. *)
val is_repair : Database.t -> t -> bool

(** [for_all db p] holds iff every repair satisfies [p]. Early exit on the
    first counterexample. *)
val for_all : Database.t -> (t -> bool) -> bool

(** [exists db p] holds iff some repair satisfies [p]. Early exit. *)
val exists : Database.t -> (t -> bool) -> bool

(** [find db p] returns the first enumerated repair satisfying [p], if any. *)
val find : Database.t -> (t -> bool) -> t option

(** [sample rng db] draws a repair uniformly at random. *)
val sample : Random.State.t -> Database.t -> t

(** [replace db r ~old_fact ~new_fact] is the paper's [r\[a -> a'\]]: the
    repair obtained by replacing [old_fact] by the key-equal [new_fact].
    @raise Invalid_argument if [old_fact] is not in [r] or the two facts are
    not key-equal in [db]. *)
val replace : Database.t -> t -> old_fact:Fact.t -> new_fact:Fact.t -> t

(** [to_database db r] views a repair as a consistent database over the same
    schemas. *)
val to_database : Database.t -> t -> Database.t
