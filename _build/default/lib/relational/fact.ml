type t = { rel : string; tuple : Value.t array }

let of_array rel tuple =
  if Array.length tuple = 0 then invalid_arg "Fact.of_array: empty tuple";
  { rel; tuple = Array.copy tuple }

let make rel values = of_array rel (Array.of_list values)
let arity f = Array.length f.tuple

let nth f i =
  if i < 0 || i >= Array.length f.tuple then invalid_arg "Fact.nth: out of bounds";
  f.tuple.(i)

let check_schema (s : Schema.t) f =
  if not (String.equal s.Schema.name f.rel && s.Schema.arity = arity f) then
    invalid_arg
      (Format.asprintf "Fact: fact %s/%d does not match schema %a" f.rel
         (arity f) Schema.pp s)

let key s f =
  check_schema s f;
  List.map (fun i -> f.tuple.(i)) (Schema.key_positions s)

let key_set s f = Value.Set.of_list (key s f)
let adom f = Array.fold_left (fun acc v -> Value.Set.add v acc) Value.Set.empty f.tuple

let key_equal s f g =
  String.equal f.rel g.rel && arity f = arity g
  && List.for_all2 Value.equal (key s f) (key s g)

let compare f g =
  let c = String.compare f.rel g.rel in
  if c <> 0 then c
  else
    let c = Int.compare (arity f) (arity g) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= Array.length f.tuple then 0
        else
          let c = Value.compare f.tuple.(i) g.tuple.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal f g = compare f g = 0

let hash f =
  Array.fold_left (fun acc v -> Hashtbl.hash (acc, Value.hash v)) (Hashtbl.hash f.rel) f.tuple

let pp ppf f =
  Format.fprintf ppf "@[<h>%s(%a)@]" f.rel
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Value.pp)
    f.tuple

let pp_with_key s ppf f =
  check_schema s f;
  let l = s.Schema.key_len in
  Format.fprintf ppf "@[<h>%s(" f.rel;
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string ppf " ";
      if i = l && l < Array.length f.tuple then Format.pp_print_string ppf "| ";
      Value.pp ppf v)
    f.tuple;
  Format.fprintf ppf ")@]"

let to_string f = Format.asprintf "%a" pp f

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
