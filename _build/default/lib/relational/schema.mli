(** Relation schemas with primary-key constraints.

    A schema is a relation symbol [R] with signature [\[k, l\]] in the paper's
    notation: [k >= 1] is the arity and the first [l] positions ([0 <= l <= k])
    form the primary key. *)

type t = private {
  name : string;  (** Relation symbol. *)
  arity : int;  (** Number of positions, [k >= 1]. *)
  key_len : int;  (** Number of leading key positions, [0 <= key_len <= arity]. *)
}

(** [make ~name ~arity ~key_len] builds a schema.
    @raise Invalid_argument if [arity < 1], [key_len < 0], [key_len > arity]
    or [name] is empty. *)
val make : name:string -> arity:int -> key_len:int -> t

(** Key positions [0 .. key_len - 1]. *)
val key_positions : t -> int list

(** Non-key positions [key_len .. arity - 1]. *)
val nonkey_positions : t -> int list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
