type t = { name : string; arity : int; key_len : int }

let make ~name ~arity ~key_len =
  if name = "" then invalid_arg "Schema.make: empty relation name";
  if arity < 1 then invalid_arg "Schema.make: arity must be >= 1";
  if key_len < 0 || key_len > arity then
    invalid_arg "Schema.make: key_len must be within [0, arity]";
  { name; arity; key_len }

let rec range i j = if i >= j then [] else i :: range (i + 1) j
let key_positions s = range 0 s.key_len
let nonkey_positions s = range s.key_len s.arity

let equal s1 s2 =
  String.equal s1.name s2.name && s1.arity = s2.arity && s1.key_len = s2.key_len

let compare s1 s2 =
  let c = String.compare s1.name s2.name in
  if c <> 0 then c
  else
    let c = Int.compare s1.arity s2.arity in
    if c <> 0 then c else Int.compare s1.key_len s2.key_len

let pp ppf s = Format.fprintf ppf "%s[%d,%d]" s.name s.arity s.key_len
