(** Blocks of key-equal facts.

    A block is a maximal set of key-equal facts of a database (Section 2 of
    the paper). Every repair picks exactly one fact from every block. *)

type t = private {
  rel : string;  (** Relation symbol of the block's facts. *)
  key : Value.t list;  (** The shared key tuple. *)
  facts : Fact.t list;  (** Distinct facts, sorted by {!Fact.compare}. *)
}

(** [make schema facts] groups the non-empty list [facts] — which must all be
    key-equal w.r.t. [schema] — into a block.
    @raise Invalid_argument if [facts] is empty or the facts are not key-equal. *)
val make : Schema.t -> Fact.t list -> t

(** Number of facts in the block. *)
val size : t -> int

val mem : Fact.t -> t -> bool

(** [group schema facts] partitions [facts] into blocks. *)
val group : Schema.t -> Fact.t list -> t list

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
