(** Ground facts [R(v1, ..., vk)].

    A fact stores its relation symbol and a tuple of {!Value.t}. Key-related
    operations take the {!Schema.t} as argument; the {!Database} module keeps
    facts and schemas consistent. *)

type t = private { rel : string; tuple : Value.t array }

(** [make rel values] builds a fact. The tuple must be non-empty.
    @raise Invalid_argument on an empty tuple. *)
val make : string -> Value.t list -> t

(** [of_array rel values] is [make] on an array (the array is copied). *)
val of_array : string -> Value.t array -> t

val arity : t -> int

(** [nth f i] is the element at position [i] (0-based).
    @raise Invalid_argument if out of bounds. *)
val nth : t -> int -> Value.t

(** [key schema f] is the tuple of key-position elements, in order.
    @raise Invalid_argument if [f] does not belong to [schema]. *)
val key : Schema.t -> t -> Value.t list

(** [key_set schema f] is the {e set} of elements occurring in key positions —
    the paper's [key(a)]. *)
val key_set : Schema.t -> t -> Value.Set.t

(** The set of all elements of the fact — the paper's [adom(a)]. *)
val adom : t -> Value.Set.t

(** [key_equal schema f g] holds iff [f ~ g]: same relation and same key tuple. *)
val key_equal : Schema.t -> t -> t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** [pp_with_key schema ppf f] prints the fact as [R(k1 k2 | v1 v2)], with a
    bar separating key from non-key positions. *)
val pp_with_key : Schema.t -> Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
