lib/relational/database.ml: Block Fact Format List Map Option Printf Schema String Value
