lib/relational/repair.mli: Database Fact Random Seq
