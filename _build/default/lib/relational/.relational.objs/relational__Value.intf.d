lib/relational/value.mli: Format Map Set
