lib/relational/database.mli: Block Fact Format Schema Value
