lib/relational/block.ml: Fact Format List Map Option String Value
