lib/relational/schema.ml: Format Int String
