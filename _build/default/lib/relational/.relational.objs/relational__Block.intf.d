lib/relational/block.mli: Fact Format Schema Value
