lib/relational/fact.ml: Array Format Hashtbl Int List Map Schema Set String Value
