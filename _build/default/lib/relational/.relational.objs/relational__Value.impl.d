lib/relational/value.ml: Format Hashtbl Map Set Stdlib String
