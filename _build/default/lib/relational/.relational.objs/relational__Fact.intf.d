lib/relational/fact.mli: Format Map Schema Set Value
