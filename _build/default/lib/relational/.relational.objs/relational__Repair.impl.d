lib/relational/repair.ml: Array Block Database Fact List Random Seq
