type t = { rel : string; key : Value.t list; facts : Fact.t list }

let make schema facts =
  match facts with
  | [] -> invalid_arg "Block.make: empty block"
  | f0 :: rest ->
      if not (List.for_all (Fact.key_equal schema f0) rest) then
        invalid_arg "Block.make: facts are not key-equal";
      let facts = List.sort_uniq Fact.compare facts in
      { rel = f0.Fact.rel; key = Fact.key schema f0; facts }

let size b = List.length b.facts
let mem f b = List.exists (Fact.equal f) b.facts

module Key_map = Map.Make (struct
  type t = string * Value.t list

  let compare (r1, k1) (r2, k2) =
    let c = String.compare r1 r2 in
    if c <> 0 then c else List.compare Value.compare k1 k2
end)

let group schema facts =
  let by_key =
    List.fold_left
      (fun acc f ->
        let k = (f.Fact.rel, Fact.key schema f) in
        let existing = Option.value ~default:[] (Key_map.find_opt k acc) in
        Key_map.add k (f :: existing) acc)
      Key_map.empty facts
  in
  Key_map.fold (fun _ fs acc -> make schema fs :: acc) by_key []
  |> List.rev

let compare b1 b2 =
  let c = String.compare b1.rel b2.rel in
  if c <> 0 then c else List.compare Value.compare b1.key b2.key

let equal b1 b2 = compare b1 b2 = 0

let pp ppf b =
  Format.fprintf ppf "@[<hov 2>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Fact.pp)
    b.facts
