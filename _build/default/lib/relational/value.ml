type t =
  | Int of int
  | Str of string
  | Pair of t * t

let int n = Int n
let str s = Str s
let pair a b = Pair (a, b)
let triple a b c = Pair (a, Pair (b, c))
let tag label v = Pair (Str label, v)

let rec compare v1 v2 =
  match (v1, v2) with
  | Int a, Int b -> Stdlib.compare a b
  | Int _, (Str _ | Pair _) -> -1
  | Str _, Int _ -> 1
  | Str a, Str b -> String.compare a b
  | Str _, Pair _ -> -1
  | Pair _, (Int _ | Str _) -> 1
  | Pair (a1, b1), Pair (a2, b2) ->
      let c = compare a1 a2 in
      if c <> 0 then c else compare b1 b2

let equal v1 v2 = compare v1 v2 = 0

let rec hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)
  | Pair (a, b) -> Hashtbl.hash (2, hash a, hash b)

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.pp_print_string ppf s
  | Pair (a, b) -> Format.fprintf ppf "@[<h>\u{27E8}%a,%a\u{27E9}@]" pp a pp b

let to_string v = Format.asprintf "%a" pp v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
