(** Normalisation to the 3-SAT fragment used by the Theorem 12 reduction,
    and random formula generation.

    The reduction of Section 9 consumes 3-SAT formulas in which every
    variable occurs at most three times, at least once positively and at
    least once negatively, every clause has between two and three literals,
    and no clause repeats a variable. [normalize] brings an arbitrary CNF
    into this shape while preserving satisfiability (it may instead decide
    the formula outright when simplification leaves nothing to encode). *)

type normalized =
  | Decided of bool  (** Simplification already settled satisfiability. *)
  | Formula of Cnf.t  (** An equisatisfiable formula in gadget shape. *)

(** [normalize f] applies: tautology/duplicate removal, unit propagation,
    pure-literal elimination, clause splitting to at most 3 literals, and the
    occurrence-chain construction limiting every variable to 3 occurrences. *)
val normalize : Cnf.t -> normalized

(** [in_gadget_shape f] checks all the invariants listed above; [normalize]
    always produces formulas satisfying it (when not [Decided]). *)
val in_gadget_shape : Cnf.t -> bool

(** [random rng ~n_vars ~n_clauses] draws a uniform random 3-CNF with
    exactly three distinct variables per clause.
    @raise Invalid_argument if [n_vars < 3]. *)
val random : Random.State.t -> n_vars:int -> n_clauses:int -> Cnf.t

(** [chain ~sat n] is a deterministic gadget-shaped family for scaling
    experiments: an implication cycle [x1 -> x2 -> ... -> xn -> x1] (forcing
    all [xi] equal) plus clauses forcing the chain true — and, when
    [sat = false], also false, making the formula unsatisfiable. All
    variables occur 2–3 times with both polarities and every clause has two
    distinct variables.
    @raise Invalid_argument if [n < 4]. *)
val chain : sat:bool -> int -> Cnf.t
