lib/satsolver/dpll.ml: Array Cnf Hashtbl List Option
