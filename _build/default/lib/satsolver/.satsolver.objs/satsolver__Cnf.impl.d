lib/satsolver/cnf.ml: Array Format List Printf String
