lib/satsolver/cnf.mli: Format
