lib/satsolver/threesat.mli: Cnf Random
