lib/satsolver/brute.ml: Array Cnf Option Printf
