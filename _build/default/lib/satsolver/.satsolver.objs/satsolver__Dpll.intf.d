lib/satsolver/dpll.mli: Cnf
