lib/satsolver/threesat.ml: Array Cnf Hashtbl Int List Option Random Set
