lib/satsolver/brute.mli: Cnf
