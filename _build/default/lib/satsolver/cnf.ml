type clause = int list
type t = { n_vars : int; clauses : clause list }

let make ~n_vars clauses =
  if n_vars < 0 then invalid_arg "Cnf.make: negative variable count";
  List.iter
    (fun clause ->
      if clause = [] then invalid_arg "Cnf.make: empty clause";
      List.iter
        (fun l ->
          let v = abs l in
          if l = 0 || v > n_vars then
            invalid_arg (Printf.sprintf "Cnf.make: literal %d out of range" l))
        clause)
    clauses;
  { n_vars; clauses }

let falsum = { n_vars = 1; clauses = [ [ 1 ]; [ -1 ] ] }
let verum = { n_vars = 0; clauses = [] }
let n_clauses f = List.length f.clauses
let var_of_lit l = abs l

let eval f assignment =
  if Array.length assignment < f.n_vars + 1 then
    invalid_arg "Cnf.eval: assignment too short";
  List.for_all
    (List.exists (fun l ->
         let v = assignment.(abs l) in
         if l > 0 then v else not v))
    f.clauses

let occurrences f =
  let occ = Array.make (f.n_vars + 1) 0 in
  List.iter (List.iter (fun l -> occ.(abs l) <- occ.(abs l) + 1)) f.clauses;
  occ

let polarities f =
  let pos = Array.make (f.n_vars + 1) 0 and neg = Array.make (f.n_vars + 1) 0 in
  List.iter
    (List.iter (fun l ->
         if l > 0 then pos.(l) <- pos.(l) + 1 else neg.(-l) <- neg.(-l) + 1))
    f.clauses;
  Array.init (f.n_vars + 1) (fun v -> (pos.(v), neg.(v)))

let clauses_of_var f v =
  List.mapi (fun i clause -> (i, clause)) f.clauses
  |> List.filter_map (fun (i, clause) ->
         if List.exists (fun l -> abs l = v) clause then Some i else None)

let pp ppf f =
  let pp_lit ppf l =
    if l > 0 then Format.fprintf ppf "x%d" l else Format.fprintf ppf "\u{00AC}x%d" (-l)
  in
  let pp_clause ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " \u{2228} ")
         pp_lit)
      c
  in
  if f.clauses = [] then Format.pp_print_string ppf "\u{22A4}"
  else
    Format.fprintf ppf "@[<hov>%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " \u{2227}@ ")
         pp_clause)
      f.clauses

let to_string f = Format.asprintf "%a" pp f

let parse s =
  let tokens =
    String.split_on_char '\n' s
    |> List.filter (fun line ->
           let t = String.trim line in
           t = "" || (t.[0] <> 'c' && t.[0] <> 'p'))
    |> String.concat " "
    |> String.split_on_char ' '
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> String.trim t <> "")
  in
  let rec go current clauses max_var = function
    | [] ->
        if current = [] then
          Ok (make ~n_vars:max_var (List.rev clauses))
        else Error "unterminated clause (missing 0)"
    | tok :: rest -> (
        match int_of_string_opt tok with
        | None -> Error (Printf.sprintf "bad token %S" tok)
        | Some 0 ->
            if current = [] then Error "empty clause"
            else go [] (List.rev current :: clauses) max_var rest
        | Some l -> go (l :: current) clauses (max max_var (abs l)) rest)
  in
  try go [] [] 0 tokens with Invalid_argument msg -> Error msg
