(** Exhaustive SAT baseline.

    Tries all [2^n] assignments; used as an independent oracle to validate
    {!Dpll} in tests. Guarded against accidental blow-ups. *)

(** [is_sat f] decides satisfiability by enumeration.
    @raise Invalid_argument if [f] has more than [max_vars] variables. *)
val is_sat : Cnf.t -> bool

(** [find_model f] returns a model if one exists. Same guard as {!is_sat}. *)
val find_model : Cnf.t -> bool array option

(** [count_models f] counts the satisfying assignments. Same guard. *)
val count_models : Cnf.t -> int

(** The enumeration guard (25). *)
val max_vars : int
