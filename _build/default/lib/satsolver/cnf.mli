(** CNF formulas.

    Variables are the integers [1 .. n_vars]; a literal is a non-zero integer
    whose sign is its polarity (DIMACS convention); a clause is a list of
    literals. This substrate drives the coNP-hardness experiment of
    Theorem 12: 3-SAT formulas with at most three occurrences per variable
    are compiled into databases. *)

type clause = int list

type t = private { n_vars : int; clauses : clause list }

(** [make ~n_vars clauses] validates that every literal mentions a variable
    in [1 .. n_vars].
    @raise Invalid_argument otherwise, or if a clause is empty — represent an
    unsatisfiable formula with [falsum]. *)
val make : n_vars:int -> clause list -> t

(** The canonical unsatisfiable formula (a single empty clause is not
    representable; this is [x ∧ ¬x]). *)
val falsum : t

(** The empty (valid) formula. *)
val verum : t

val n_clauses : t -> int

(** [var_of_lit l] is [abs l]. *)
val var_of_lit : int -> int

(** [eval f assignment] evaluates under [assignment.(v)] for [v] in
    [1 .. n_vars] (index 0 unused).
    @raise Invalid_argument if the array is too short. *)
val eval : t -> bool array -> bool

(** [occurrences f] maps each variable to its number of literal occurrences
    (array of size [n_vars + 1]). *)
val occurrences : t -> int array

(** [polarities f] maps each variable [v] to [(pos, neg)] occurrence counts. *)
val polarities : t -> (int * int) array

(** Clause lists per variable are handy for gadget construction:
    [clauses_of_var f v] lists the 0-based indices of clauses containing [v]
    (either polarity), in order. *)
val clauses_of_var : t -> int -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** DIMACS-like parser: [p cnf n m] header optional; clauses are
    whitespace-separated literals terminated by [0]. *)
val parse : string -> (t, string) result
