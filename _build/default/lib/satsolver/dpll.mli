(** A DPLL SAT solver: unit propagation, pure-literal elimination and
    branching on a most-frequent literal.

    Complete and sound; adequate for the gadget experiments of Theorem 12
    (small formulas, checked against {!Brute}). *)

type result =
  | Sat of bool array  (** A model; index 0 is unused. *)
  | Unsat

val solve : Cnf.t -> result

(** [is_sat f] is [true] iff [f] is satisfiable. *)
val is_sat : Cnf.t -> bool
