type normalized = Decided of bool | Formula of Cnf.t

module Int_set = Set.Make (Int)

let dedup_clause clause = List.sort_uniq Int.compare clause
let is_tautology clause = List.exists (fun l -> List.mem (-l) clause) clause

exception Empty_clause

(* Assign literal [l] true in the clause list. *)
let assign l clauses =
  List.filter_map
    (fun clause ->
      if List.mem l clause then None
      else
        match List.filter (fun x -> x <> -l) clause with
        | [] -> raise Empty_clause
        | c -> Some c)
    clauses

(* Unit propagation + pure literal elimination to fixpoint. *)
let simplify clauses =
  let rec go clauses =
    match List.find_map (function [ l ] -> Some l | _ -> None) clauses with
    | Some l -> go (assign l clauses)
    | None ->
        let pos, neg =
          List.fold_left
            (List.fold_left (fun (pos, neg) l ->
                 if l > 0 then (Int_set.add l pos, neg)
                 else (pos, Int_set.add (-l) neg)))
            (Int_set.empty, Int_set.empty) clauses
        in
        let pure_pos = Int_set.diff pos neg and pure_neg = Int_set.diff neg pos in
        if Int_set.is_empty pure_pos && Int_set.is_empty pure_neg then clauses
        else
          let clauses = Int_set.fold (fun v cs -> assign v cs) pure_pos clauses in
          let clauses = Int_set.fold (fun v cs -> assign (-v) cs) pure_neg clauses in
          go clauses
  in
  go clauses

(* Split clauses with more than 3 literals using fresh chaining variables:
   (l1 .. lm) becomes (l1 l2 y1)(neg y1 l3 y2)...(neg y_j l_{m-1} lm). *)
let split_long next_var clauses =
  let fresh () =
    let v = !next_var in
    incr next_var;
    v
  in
  List.concat_map
    (fun clause ->
      let rec go acc = function
        | l1 :: l2 :: l3 :: (_ :: _ as rest) ->
            let y = fresh () in
            go ([ l1; l2; y ] :: acc) ((-y) :: l3 :: rest)
        | short -> List.rev (short :: acc)
      in
      match clause with
      | [ _ ] | [ _; _ ] | [ _; _; _ ] -> [ clause ]
      | _ -> go [] clause)
    clauses

(* Limit every variable to at most 3 occurrences via the standard cyclic
   implication chain: replace the i-th occurrence of v by a fresh v_i and add
   clauses (neg v_1 v_2) ... (neg v_m v_1), forcing all copies equal. *)
let limit_occurrences next_var clauses =
  let occ = Hashtbl.create 16 in
  List.iter
    (List.iter (fun l ->
         let v = abs l in
         Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v))))
    clauses;
  let heavy = Hashtbl.fold (fun v c acc -> if c > 3 then v :: acc else acc) occ [] in
  let chains = ref [] in
  let clauses = ref clauses in
  List.iter
    (fun v ->
      let copies = ref [] in
      let counter = ref 0 in
      clauses :=
        List.map
          (List.map (fun l ->
               if abs l <> v then l
               else begin
                 let fresh = !next_var in
                 incr next_var;
                 copies := fresh :: !copies;
                 incr counter;
                 if l > 0 then fresh else -fresh
               end))
          !clauses;
      match List.rev !copies with
      | [] | [ _ ] -> ()
      | first :: _ as all ->
          let rec link = function
            | a :: (b :: _ as rest) ->
                chains := [ -a; b ] :: !chains;
                link rest
            | [ last ] -> chains := [ -last; first ] :: !chains
            | [] -> ()
          in
          link all)
    heavy;
  !clauses @ List.rev !chains

let max_var clauses =
  List.fold_left (List.fold_left (fun m l -> max m (abs l))) 0 clauses

let normalize (f : Cnf.t) =
  let clauses =
    f.Cnf.clauses |> List.map dedup_clause
    |> List.filter (fun c -> not (is_tautology c))
  in
  match simplify clauses with
  | exception Empty_clause -> Decided false
  | [] -> Decided true
  | clauses ->
      let next_var = ref (max_var clauses + 1) in
      let clauses = split_long next_var clauses in
      let clauses = limit_occurrences next_var clauses in
      Formula (Cnf.make ~n_vars:(max_var clauses) clauses)

let in_gadget_shape (f : Cnf.t) =
  let pol = Cnf.polarities f in
  let vars_used = Hashtbl.create 16 in
  List.iter
    (List.iter (fun l -> Hashtbl.replace vars_used (abs l) ()))
    f.Cnf.clauses;
  let clause_ok clause =
    let n = List.length clause in
    let vars = List.map abs clause in
    n >= 2 && n <= 3 && List.length (List.sort_uniq Int.compare vars) = n
  in
  let var_ok v =
    let pos, neg = pol.(v) in
    pos >= 1 && neg >= 1 && pos + neg <= 3
  in
  List.for_all clause_ok f.Cnf.clauses
  && Hashtbl.fold (fun v () acc -> acc && var_ok v) vars_used true

let chain ~sat n =
  if n < 4 then invalid_arg "Threesat.chain: need at least 4 chain variables";
  let y = n + 1 and z = n + 2 in
  let cycle =
    List.init n (fun i ->
        let x = i + 1 in
        let x' = if x = n then 1 else x + 1 in
        [ -x; x' ])
  in
  let force_true = [ [ 1; y ]; [ 2; -y ] ] in
  let tail =
    if sat then [ [ -(n - 1); z ]; [ n; -z ] ] else [ [ -(n - 1); z ]; [ -n; -z ] ]
  in
  Cnf.make ~n_vars:(n + 2) (cycle @ force_true @ tail)

let random rng ~n_vars ~n_clauses =
  if n_vars < 3 then invalid_arg "Threesat.random: need at least 3 variables";
  let clause () =
    let rec distinct acc =
      if List.length acc = 3 then acc
      else
        let v = 1 + Random.State.int rng n_vars in
        if List.mem v acc then distinct acc else distinct (v :: acc)
    in
    List.map
      (fun v -> if Random.State.bool rng then v else -v)
      (distinct [])
  in
  Cnf.make ~n_vars (List.init n_clauses (fun _ -> clause ()))
