type var = string

type t =
  | True
  | False
  | Atom of string * var list
  | Eq of var * var
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of var * t
  | Forall of var * t

let conj = function [] -> True | f :: fs -> List.fold_left (fun a b -> And (a, b)) f fs
let disj = function [] -> False | f :: fs -> List.fold_left (fun a b -> Or (a, b)) f fs

module Vs = Set.Make (String)

let free_vars formula =
  let rec go bound = function
    | True | False -> Vs.empty
    | Atom (_, xs) -> Vs.diff (Vs.of_list xs) bound
    | Eq (x, y) -> Vs.diff (Vs.of_list [ x; y ]) bound
    | Not f -> go bound f
    | And (f, g) | Or (f, g) | Implies (f, g) -> Vs.union (go bound f) (go bound g)
    | Exists (x, f) | Forall (x, f) -> go (Vs.add x bound) f
  in
  Vs.elements (go Vs.empty formula)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "\u{22A4}"
  | False -> Format.pp_print_string ppf "\u{22A5}"
  | Atom (r, xs) -> Format.fprintf ppf "%s(%s)" r (String.concat "," xs)
  | Eq (x, y) -> Format.fprintf ppf "%s=%s" x y
  | Not f -> Format.fprintf ppf "\u{00AC}%a" pp_atomic f
  | And (f, g) -> Format.fprintf ppf "%a \u{2227} %a" pp_atomic f pp_atomic g
  | Or (f, g) -> Format.fprintf ppf "%a \u{2228} %a" pp_atomic f pp_atomic g
  | Implies (f, g) -> Format.fprintf ppf "%a \u{2192} %a" pp_atomic f pp_atomic g
  | Exists (x, f) -> Format.fprintf ppf "\u{2203}%s.%a" x pp_atomic f
  | Forall (x, f) -> Format.fprintf ppf "\u{2200}%s.%a" x pp_atomic f

and pp_atomic ppf f =
  match f with
  | True | False | Atom _ | Eq _ | Not _ -> pp ppf f
  | And _ | Or _ | Implies _ | Exists _ | Forall _ -> Format.fprintf ppf "(%a)" pp f
