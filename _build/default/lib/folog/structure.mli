(** Finite relational structures with elements [0 .. size - 1]. *)

type t

(** [create ~size] builds an empty structure.
    @raise Invalid_argument if [size < 0]. *)
val create : size:int -> t

val size : t -> int

(** [declare s name arity] registers an empty relation.
    @raise Invalid_argument if [name] exists with a different arity. *)
val declare : t -> string -> int -> unit

(** [add s name tuple] inserts a tuple (declaring the relation if new).
    @raise Invalid_argument on arity mismatch or out-of-range elements. *)
val add : t -> string -> int list -> unit

val mem : t -> string -> int list -> bool

(** Number of tuples in a relation (0 if undeclared). *)
val cardinal : t -> string -> int

(** [tuples s name] lists a relation's tuples. *)
val tuples : t -> string -> int list list

(** [copy s] is an independent deep copy — used by inflationary fixpoints to
    snapshot the previous stage. *)
val copy : t -> t
