type env = (Formula.var * int) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Eval: unbound variable %s" x)

let rec eval s env (f : Formula.t) =
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom (r, xs) -> Structure.mem s r (List.map (lookup env) xs)
  | Formula.Eq (x, y) -> lookup env x = lookup env y
  | Formula.Not f -> not (eval s env f)
  | Formula.And (f, g) -> eval s env f && eval s env g
  | Formula.Or (f, g) -> eval s env f || eval s env g
  | Formula.Implies (f, g) -> (not (eval s env f)) || eval s env g
  | Formula.Exists (x, f) ->
      let n = Structure.size s in
      let rec go i = i < n && (eval s ((x, i) :: env) f || go (i + 1)) in
      go 0
  | Formula.Forall (x, f) ->
      let n = Structure.size s in
      let rec go i = i >= n || (eval s ((x, i) :: env) f && go (i + 1)) in
      go 0

let holds s f = eval s [] f

let select s f ~tuple_vars =
  List.iter
    (fun v ->
      if not (List.mem v tuple_vars) then
        invalid_arg (Printf.sprintf "Eval.select: free variable %s not selected" v))
    (Formula.free_vars f);
  let n = Structure.size s in
  let rec enumerate env = function
    | [] -> if eval s env f then [ List.map (fun v -> lookup env v) tuple_vars ] else []
    | x :: rest ->
        List.concat (List.init n (fun i -> enumerate ((x, i) :: env) rest))
  in
  enumerate [] tuple_vars
