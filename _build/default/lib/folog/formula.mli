(** First-order formulas over a relational vocabulary with equality.

    Terms are variables only (constants are unnecessary over the finite
    structures we evaluate on). This substrate exists because the paper
    observes that the initial and inductive steps of the greedy fixpoint
    algorithm [Cert_k] "can be expressed in FO": {!Cqa.Certk_fo} runs that
    observation literally, iterating FO-defined updates to a fixpoint. *)

type var = string

type t =
  | True
  | False
  | Atom of string * var list  (** [Atom (r, xs)]: relation [r] holds of [xs]. *)
  | Eq of var * var
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of var * t
  | Forall of var * t

(** [conj fs] and [disj fs] fold lists ([True]/[False] for empty lists). *)
val conj : t list -> t

val disj : t list -> t

(** Free variables of a formula. *)
val free_vars : t -> var list

val pp : Format.formatter -> t -> unit
