(** Model checking: evaluate FO formulas over finite structures.

    Straightforward recursive evaluation; quantifiers range over the whole
    domain. Exponential only in quantifier depth, which is constant for the
    fixed formulas used here. *)

type env = (Formula.var * int) list

(** [eval s env f] evaluates [f] under the assignment [env].
    @raise Invalid_argument if a free variable is unbound or an atom's arity
    mismatches its relation. *)
val eval : Structure.t -> env -> Formula.t -> bool

(** [holds s f] is [eval s [] f] — [f] must be a sentence. *)
val holds : Structure.t -> Formula.t -> bool

(** [select s f ~tuple_vars] lists the assignments of [tuple_vars] making
    [f] true ([f]'s free variables must be among [tuple_vars]). *)
val select : Structure.t -> Formula.t -> tuple_vars:Formula.var list -> int list list
