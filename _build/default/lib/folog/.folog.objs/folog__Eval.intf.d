lib/folog/eval.mli: Formula Structure
