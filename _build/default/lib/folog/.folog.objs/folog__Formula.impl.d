lib/folog/formula.ml: Format List Set String
