lib/folog/structure.mli:
