lib/folog/formula.mli: Format
