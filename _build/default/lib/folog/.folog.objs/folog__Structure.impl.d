lib/folog/structure.ml: Hashtbl List Printf
