lib/folog/eval.ml: Formula List Printf Structure
