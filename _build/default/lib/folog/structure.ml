type relation = { arity : int; tuples : (int list, unit) Hashtbl.t }
type t = { size : int; relations : (string, relation) Hashtbl.t }

let create ~size =
  if size < 0 then invalid_arg "Structure.create: negative size";
  { size; relations = Hashtbl.create 8 }

let size s = s.size

let declare s name arity =
  match Hashtbl.find_opt s.relations name with
  | Some r when r.arity <> arity ->
      invalid_arg (Printf.sprintf "Structure.declare: %s has arity %d" name r.arity)
  | Some _ -> ()
  | None -> Hashtbl.add s.relations name { arity; tuples = Hashtbl.create 16 }

let add s name tuple =
  (match Hashtbl.find_opt s.relations name with
  | None -> declare s name (List.length tuple)
  | Some r ->
      if r.arity <> List.length tuple then
        invalid_arg (Printf.sprintf "Structure.add: arity mismatch for %s" name));
  List.iter
    (fun e ->
      if e < 0 || e >= s.size then invalid_arg "Structure.add: element out of range")
    tuple;
  Hashtbl.replace (Hashtbl.find s.relations name).tuples tuple ()

let mem s name tuple =
  match Hashtbl.find_opt s.relations name with
  | None -> false
  | Some r -> Hashtbl.mem r.tuples tuple

let cardinal s name =
  match Hashtbl.find_opt s.relations name with
  | None -> 0
  | Some r -> Hashtbl.length r.tuples

let tuples s name =
  match Hashtbl.find_opt s.relations name with
  | None -> []
  | Some r -> Hashtbl.fold (fun t () acc -> t :: acc) r.tuples []

let copy s =
  let fresh = { size = s.size; relations = Hashtbl.create 8 } in
  Hashtbl.iter
    (fun name r ->
      Hashtbl.add fresh.relations name
        { arity = r.arity; tuples = Hashtbl.copy r.tuples })
    s.relations;
  fresh
