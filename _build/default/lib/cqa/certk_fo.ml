module F = Folog.Formula
module S = Folog.Structure
module E = Folog.Eval
module Solution_graph = Qlang.Solution_graph

(* covered_S(u): some subset of S ∪ {u} is in Δ. The disjuncts enumerate the
   subsets by size; Delta0 covers the empty set. *)
let covered0 u = F.disj [ F.Atom ("Delta0", []); F.Atom ("Delta1", [ u ]) ]

let covered1 x u =
  F.disj
    [
      F.Atom ("Delta0", []);
      F.Atom ("Delta1", [ x ]);
      F.Atom ("Delta1", [ u ]);
      F.Atom ("Delta2", [ x; u ]);
    ]

let covered2 x y u =
  F.disj
    [
      F.Atom ("Delta0", []);
      F.Atom ("Delta1", [ x ]);
      F.Atom ("Delta1", [ y ]);
      F.Atom ("Delta1", [ u ]);
      F.Atom ("Delta2", [ x; y ]);
      F.Atom ("Delta2", [ x; u ]);
      F.Atom ("Delta2", [ y; u ]);
    ]

(* "There is a block B such that every fact u of B satisfies covered(u)":
   blocks are represented by any of their members w. *)
let exists_block covered =
  F.Exists
    ( "w",
      F.Forall ("u", F.Implies (F.Atom ("SameBlock", [ "u"; "w" ]), covered "u")) )

let formulas () =
  let step0 = exists_block (fun u -> covered0 u) in
  let step1 = exists_block (fun u -> covered1 "x" u) in
  let step2 =
    F.conj
      [
        F.Not (F.Eq ("x", "y"));
        F.Not (F.Atom ("SameBlock", [ "x"; "y" ]));
        exists_block (fun u -> covered2 "x" "y" u);
      ]
  in
  (step0, step1, step2)

let structure (g : Solution_graph.t) =
  let n = Solution_graph.n_facts g in
  let s = S.create ~size:n in
  S.declare s "Sol" 2;
  S.declare s "SameBlock" 2;
  S.declare s "Delta0" 0;
  S.declare s "Delta1" 1;
  S.declare s "Delta2" 2;
  List.iter (fun (i, j) -> S.add s "Sol" [ i; j ]) g.Solution_graph.directed;
  Array.iter
    (fun block ->
      Array.iter
        (fun i -> Array.iter (fun j -> S.add s "SameBlock" [ i; j ]) block)
        block)
    g.Solution_graph.blocks;
  s

let run (g : Solution_graph.t) =
  let s = structure g in
  let n = S.size s in
  (* Initial stage: solution pairs across blocks and self-solutions. *)
  for i = 0 to n - 1 do
    if S.mem s "Sol" [ i; i ] then S.add s "Delta1" [ i ]
  done;
  List.iter
    (fun (i, j) ->
      if i <> j && not (S.mem s "SameBlock" [ i; j ])
      then begin
        S.add s "Delta2" [ i; j ];
        S.add s "Delta2" [ j; i ]
      end)
    g.Solution_graph.directed;
  let step0, step1, step2 = formulas () in
  let changed = ref true in
  while (not (S.mem s "Delta0" [])) && !changed do
    changed := false;
    if E.holds s step0 then begin
      S.add s "Delta0" [];
      changed := true
    end;
    for x = 0 to n - 1 do
      if (not (S.mem s "Delta1" [ x ])) && E.eval s [ ("x", x) ] step1 then begin
        S.add s "Delta1" [ x ];
        changed := true
      end
    done;
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        if
          (not (S.mem s "Delta2" [ x; y ]))
          && E.eval s [ ("x", x); ("y", y) ] step2
        then begin
          S.add s "Delta2" [ x; y ];
          S.add s "Delta2" [ y; x ];
          changed := true
        end
      done
    done
  done;
  S.mem s "Delta0" []

let certain_query q db = run (Solution_graph.of_query q db)
