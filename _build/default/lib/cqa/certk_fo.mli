(** [Cert_2] as an inflationary first-order fixpoint, literally.

    Section 5 of the paper remarks that "the initial and inductive steps
    \[of the greedy fixpoint algorithm\] can be expressed in FO". This
    module runs that observation: the database is encoded as a finite
    structure over the facts, with relations

    - [Sol(x, y)] — the directed solutions, including self-solutions;
    - [SameBlock(x, y)] — key-equality;
    - [Delta0/Delta1/Delta2] — the fixpoint family [Δ_2(q, D)] stratified by
      set size (the Boolean [Delta0] is a nullary relation stored as a
      0-tuple),

    and one FO update formula per size is evaluated by the generic model
    checker {!Folog.Eval} and iterated inflationarily until nothing changes.
    The answer is [Delta0]. Polynomially slower than {!Certk} but an
    independent implementation straight from the paper's description —
    property-tested equal to both {!Certk} and {!Certk_naive}. *)

(** The update formulas, for inspection: [(step0, step1, step2)] with free
    variables [()], [(x)] and [(x, y)] respectively. *)
val formulas : unit -> Folog.Formula.t * Folog.Formula.t * Folog.Formula.t

(** [structure g] encodes a solution graph as a finite structure (without
    the [Delta] relations). *)
val structure : Qlang.Solution_graph.t -> Folog.Structure.t

(** [run g] computes [D ⊨ Cert_2(q)] by the FO fixpoint. *)
val run : Qlang.Solution_graph.t -> bool

val certain_query : Qlang.Query.t -> Relational.Database.t -> bool
