(** The Kolaitis–Pema dichotomy for {e self-join-free} two-atom queries
    (IPL 2012) — the result the paper's Theorem 3 reduces to.

    For [q = R1(x̄) ∧ R2(ȳ)] over two distinct relations, CERTAIN(q) is
    coNP-complete iff both:

    + [vars(A) ∩ vars(B) ⊄ key(A)], [vars(A) ∩ vars(B) ⊄ key(B)],
      [key(A) ⊄ key(B)] and [key(B) ⊄ key(A)]; and
    + [key(A) ⊄ vars(B)] or [key(B) ⊄ vars(A)];

    and in PTIME otherwise — in which case the greedy fixpoint [Cert_2]
    computes it (Figueira et al., ICDT 2023, proved [Cert_k] captures every
    PTIME self-join-free case with [k] the number of atoms). Our [Cert_k]
    implementation runs on solution graphs and therefore serves the
    self-join-free case unchanged.

    This module lets one observe the paper's remark that the converse of
    Proposition 2 fails: [sjf(q2)] is classified PTIME here while
    CERTAIN(q2) is coNP-complete. *)

type verdict =
  | Sjf_ptime  (** [Cert_2] computes CERTAIN. *)
  | Sjf_conp_complete

val pp_verdict : Format.formatter -> verdict -> unit

(** Condition (1) above (the paper's Theorem 3 condition (1), read over the
    two relations). *)
val condition1 : Qlang.Sjf.t -> bool

(** Condition (2). *)
val condition2 : Qlang.Sjf.t -> bool

(** [classify s] applies the Kolaitis–Pema dichotomy. *)
val classify : Qlang.Sjf.t -> verdict

(** [certain_ptime s db] decides CERTAIN with [Cert_2] over the two-relation
    solution graph — exact whenever [classify s = Sjf_ptime]. *)
val certain_ptime : Qlang.Sjf.t -> Relational.Database.t -> bool

(** [certain_exact s db] is the exponential baseline (backtracking falsifier
    search), exact for every verdict. *)
val certain_exact : Qlang.Sjf.t -> Relational.Database.t -> bool
