module Solution_graph = Qlang.Solution_graph
module Database = Relational.Database

let block_components (g : Solution_graph.t) =
  let n_blocks = Solution_graph.n_blocks g in
  let parent = Array.init n_blocks (fun b -> b) in
  let rec find b = if parent.(b) = b then b else find parent.(b) in
  let union b1 b2 =
    let r1 = find b1 and r2 = find b2 in
    if r1 <> r2 then parent.(r1) <- r2
  in
  List.iter
    (fun (i, j) -> union g.Solution_graph.block_of.(i) g.Solution_graph.block_of.(j))
    g.Solution_graph.directed;
  (* Renumber roots consecutively. *)
  let ids = Array.make n_blocks (-1) in
  let next = ref 0 in
  let comp = Array.make n_blocks (-1) in
  for b = 0 to n_blocks - 1 do
    let r = find b in
    if ids.(r) < 0 then begin
      ids.(r) <- !next;
      incr next
    end;
    comp.(b) <- ids.(r)
  done;
  (comp, !next)

let split (q : Qlang.Query.t) db =
  let g = Solution_graph.of_query q db in
  let comp, n = block_components g in
  if n = 0 then []
  else begin
    let buckets = Array.make n [] in
    Array.iteri
      (fun v f ->
        let c = comp.(g.Solution_graph.block_of.(v)) in
        buckets.(c) <- f :: buckets.(c))
      g.Solution_graph.facts;
    Array.to_list
      (Array.map (fun facts -> Database.of_facts (Database.schemas db) facts) buckets)
  end

let certain_by_components solve q db =
  List.exists solve (split q db)
