lib/cqa/exact.ml: Array List Option Qlang Relational
