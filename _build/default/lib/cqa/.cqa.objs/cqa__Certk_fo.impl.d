lib/cqa/certk_fo.ml: Array Folog List Qlang
