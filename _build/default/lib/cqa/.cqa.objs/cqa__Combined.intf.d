lib/cqa/combined.mli: Qlang Relational
