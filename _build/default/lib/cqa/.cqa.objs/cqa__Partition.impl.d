lib/cqa/partition.ml: Array List Qlang Relational
