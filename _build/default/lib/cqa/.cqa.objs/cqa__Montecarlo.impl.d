lib/cqa/montecarlo.ml: Qlang Relational
