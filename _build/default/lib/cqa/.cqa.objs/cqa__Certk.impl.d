lib/cqa/certk.ml: Array Format Hashtbl Int List Map Qlang Relational Set String
