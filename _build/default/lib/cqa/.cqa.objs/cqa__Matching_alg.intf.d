lib/cqa/matching_alg.mli: Graphs Qlang Relational
