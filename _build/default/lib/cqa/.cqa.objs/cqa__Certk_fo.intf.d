lib/cqa/certk_fo.mli: Folog Qlang Relational
