lib/cqa/satreduce.ml: Array List Option Qlang Satsolver
