lib/cqa/certk_naive.mli: Qlang
