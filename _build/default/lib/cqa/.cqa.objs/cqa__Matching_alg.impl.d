lib/cqa/matching_alg.ml: Array Graphs Qlang
