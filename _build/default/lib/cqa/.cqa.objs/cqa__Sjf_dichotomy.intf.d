lib/cqa/sjf_dichotomy.mli: Format Qlang Relational
