lib/cqa/montecarlo.mli: Qlang Random Relational
