lib/cqa/partition.mli: Qlang Relational
