lib/cqa/exact.mli: Qlang Relational
