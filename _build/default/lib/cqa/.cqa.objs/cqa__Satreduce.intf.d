lib/cqa/satreduce.mli: Qlang Relational Satsolver
