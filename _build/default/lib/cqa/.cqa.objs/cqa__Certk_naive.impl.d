lib/cqa/certk_naive.ml: Array Int List Qlang Set
