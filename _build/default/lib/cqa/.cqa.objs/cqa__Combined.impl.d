lib/cqa/combined.ml: Certk Matching_alg Qlang
