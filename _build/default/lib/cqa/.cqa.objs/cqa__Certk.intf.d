lib/cqa/certk.mli: Format Qlang Relational
