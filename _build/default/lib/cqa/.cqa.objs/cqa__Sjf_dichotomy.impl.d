lib/cqa/sjf_dichotomy.ml: Certk Exact Format Qlang
