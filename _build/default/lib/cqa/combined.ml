type witness = Via_certk | Via_matching | Neither

let explain ~k g =
  if Certk.run ~k g then Via_certk
  else if not (Matching_alg.run g) then Via_matching
  else Neither

let run ~k g = match explain ~k g with Via_certk | Via_matching -> true | Neither -> false
let certain_query ~k q db = run ~k (Qlang.Solution_graph.of_query q db)
