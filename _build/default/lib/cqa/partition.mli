(** Component partition of a database (the shape of Proposition 19).

    Two blocks are connected when some of their facts form a solution; the
    partition groups whole blocks by the connected components of that
    quotient of the solution graph. Solutions never cross components, so:

    - a repair of [D] falsifies [q] iff its restriction to every component
      falsifies [q]: [D ⊨ CERTAIN(q)] iff some component is certain
      (property (2) of Proposition 19);
    - [Cert_k] and [Matching] distribute over components (properties (3)
      and (4)).

    Proposition 19 additionally shows that for 2way-determined queries
    without fork-tripaths the components can be chosen so that each one has
    no tripath or is a clique-database; the integration tests check the
    behavioural consequences on the paper's examples. *)

(** [block_components g] maps each block of the solution graph to a
    component id, and returns the number of components. Blocks with no
    solution edges form singleton components. *)
val block_components : Qlang.Solution_graph.t -> int array * int

(** [split q db] materialises the components as sub-databases (whole blocks,
    in component order). Their union is [db]. *)
val split : Qlang.Query.t -> Relational.Database.t -> Relational.Database.t list

(** [certain_by_components solve q db] decides CERTAIN(q) by applying the
    component-local decision procedure [solve] to each component: certain
    iff some component is certain. With an exact [solve] this is exact, and
    often exponentially faster than solving [db] whole. *)
val certain_by_components :
  (Relational.Database.t -> bool) ->
  Qlang.Query.t ->
  Relational.Database.t ->
  bool
