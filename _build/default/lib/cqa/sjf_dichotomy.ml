module Sjf = Qlang.Sjf
module Atom = Qlang.Atom
module Var_set = Qlang.Term.Var_set

type verdict = Sjf_ptime | Sjf_conp_complete

let pp_verdict ppf = function
  | Sjf_ptime -> Format.pp_print_string ppf "PTIME (Cert_2 exact)"
  | Sjf_conp_complete -> Format.pp_print_string ppf "coNP-complete"

let sets (s : Sjf.t) =
  let vars_a = Atom.vars s.Sjf.a and vars_b = Atom.vars s.Sjf.b in
  let key_a = Atom.key_vars s.Sjf.s1 s.Sjf.a and key_b = Atom.key_vars s.Sjf.s2 s.Sjf.b in
  (vars_a, vars_b, key_a, key_b)

let condition1 s =
  let vars_a, vars_b, key_a, key_b = sets s in
  let shared = Var_set.inter vars_a vars_b in
  (not (Var_set.subset shared key_a))
  && (not (Var_set.subset shared key_b))
  && (not (Var_set.subset key_a key_b))
  && not (Var_set.subset key_b key_a)

let condition2 s =
  let vars_a, vars_b, key_a, key_b = sets s in
  (not (Var_set.subset key_a vars_b)) || not (Var_set.subset key_b vars_a)

let classify s =
  if condition1 s && condition2 s then Sjf_conp_complete else Sjf_ptime

let certain_ptime s db = Certk.run ~k:2 (Sjf.solution_graph s db)
let certain_exact s db = Exact.certain_sjf s db
