(** Textbook reference implementation of [Cert_k(q)] (Section 5), kept as an
    oracle for the optimised antichain implementation in {!Certk}.

    It materialises {e all} k-sets of the database and computes the
    inflationary fixpoint [Δ_k(q, D)] literally: initialise with the k-sets
    satisfying [q]; repeatedly add a k-set [S] whenever some block [B] is
    such that every [u ∈ B] has some [S' ⊆ S ∪ {u}] already in the fixpoint;
    answer yes iff [∅] enters the fixpoint. Exponential in [k] — use only on
    small instances (the implementation refuses more than [10^6] candidate
    k-sets). *)

(** [run ~k g] computes [D ⊨ Cert_k(q)] by the literal definition.
    @raise Invalid_argument if [k < 1] or the instance has too many k-sets. *)
val run : k:int -> Qlang.Solution_graph.t -> bool

(** [delta ~k g] exposes the full fixpoint (sorted vertex lists). *)
val delta : k:int -> Qlang.Solution_graph.t -> int list list
