module Repair = Relational.Repair

type estimate = {
  trials : int;
  satisfying : int;
  frequency : float;
  counterexample : Repair.t option;
}

let estimate rng ~trials q db =
  if trials < 0 then invalid_arg "Montecarlo.estimate: negative trial count";
  let satisfying = ref 0 in
  let counterexample = ref None in
  for _ = 1 to trials do
    let r = Repair.sample rng db in
    if Qlang.Solutions.query_satisfies q r then incr satisfying
    else if !counterexample = None then counterexample := Some r
  done;
  {
    trials;
    satisfying = !satisfying;
    frequency = (if trials = 0 then 1.0 else float_of_int !satisfying /. float_of_int trials);
    counterexample = !counterexample;
  }

let refute rng ~trials q db = (estimate rng ~trials q db).counterexample
