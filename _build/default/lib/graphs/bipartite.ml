type t = { n_left : int; n_right : int; adj : int list array }

let make ~n_left ~n_right edges =
  if n_left < 0 || n_right < 0 then invalid_arg "Bipartite.make: negative size";
  let adj = Array.make (max n_left 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n_left || v < 0 || v >= n_right then
        invalid_arg
          (Printf.sprintf "Bipartite.make: edge (%d,%d) out of range" u v);
      adj.(u) <- v :: adj.(u))
    edges;
  let adj = Array.init n_left (fun u -> List.sort_uniq Int.compare adj.(u)) in
  { n_left; n_right; adj }

let n_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.adj
let mem_edge g u v = u >= 0 && u < g.n_left && List.mem v g.adj.(u)

let pp ppf g =
  Format.fprintf ppf "@[<v>bipartite %dx%d@," g.n_left g.n_right;
  Array.iteri
    (fun u vs ->
      Format.fprintf ppf "%d -> [%s]@," u
        (String.concat "," (List.map string_of_int vs)))
    g.adj;
  Format.fprintf ppf "@]"
