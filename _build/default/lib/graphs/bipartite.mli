(** Bipartite graphs with integer-indexed sides.

    Side [U] has vertices [0 .. n_left - 1], side [V] has vertices
    [0 .. n_right - 1]; edges go between the sides. This is the input to the
    matching algorithms used by the [Matching(q)] certain-answer algorithm of
    Section 10.1 (the paper cites Hopcroft–Karp [5]). *)

type t = private {
  n_left : int;
  n_right : int;
  adj : int list array;  (** [adj.(u)] lists the right-neighbours of [u]. *)
}

(** [make ~n_left ~n_right edges] builds a graph from an edge list.
    Duplicate edges are collapsed.
    @raise Invalid_argument on out-of-range endpoints or negative sizes. *)
val make : n_left:int -> n_right:int -> (int * int) list -> t

val n_edges : t -> int
val mem_edge : t -> int -> int -> bool
val pp : Format.formatter -> t -> unit
