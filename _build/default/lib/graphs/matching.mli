(** Maximum matching in bipartite graphs.

    Two implementations with identical specifications: {!hopcroft_karp} in
    [O(E sqrt V)] (the algorithm cited as [5] in the paper) and the textbook
    augmenting-path algorithm {!augmenting} in [O(V E)], kept as an
    independent oracle for tests. *)

type t = {
  pair_left : int array;  (** [pair_left.(u)] is the partner of [u], or -1. *)
  pair_right : int array;  (** [pair_right.(v)] is the partner of [v], or -1. *)
  size : int;  (** Number of matched pairs. *)
}

(** Maximum matching via Hopcroft–Karp. *)
val hopcroft_karp : Bipartite.t -> t

(** Maximum matching via repeated DFS augmenting paths. *)
val augmenting : Bipartite.t -> t

(** [saturates_left g m] holds iff every left vertex is matched. *)
val saturates_left : Bipartite.t -> t -> bool

(** [is_valid g m] checks that [m] is a matching of [g]: partners are
    mutual, edges exist, no vertex is used twice. *)
val is_valid : Bipartite.t -> t -> bool
