lib/graphs/matching.ml: Array Bipartite List Queue
