lib/graphs/matching.mli: Bipartite
