lib/graphs/bipartite.mli: Format
