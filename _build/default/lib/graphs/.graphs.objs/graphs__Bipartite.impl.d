lib/graphs/bipartite.ml: Array Format Int List Printf String
