type t = Term.t Term.Var_map.t

let empty = Term.Var_map.empty
let is_empty = Term.Var_map.is_empty
let find x s = Term.Var_map.find_opt x s
let bindings s = Term.Var_map.bindings s

let apply_term s t =
  match t with
  | Term.Cst _ -> t
  | Term.Var x -> ( match Term.Var_map.find_opt x s with Some t' -> t' | None -> t)

let apply_atom s a =
  Atom.of_array a.Atom.rel (Array.map (apply_term s) a.Atom.args)

let extend x t s =
  let t = apply_term s t in
  match Term.Var_map.find_opt x s with
  | Some existing -> if Term.equal existing t then Some s else None
  | None ->
      if Term.equal t (Term.Var x) then Some s
      else
        let single = Term.Var_map.singleton x t in
        let rewritten = Term.Var_map.map (fun u -> apply_term single u) s in
        Some (Term.Var_map.add x t rewritten)

let of_var_map m = m

let pp ppf s =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, t) -> Format.fprintf ppf "%s:=%a" x Term.pp t))
    (bindings s)
