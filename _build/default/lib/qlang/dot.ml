let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render ?(name = "solutions") ?(directed = false) ?(filled = fun _ -> false)
    (g : Solution_graph.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s %s {\n" (if directed then "digraph" else "graph") name;
  add "  node [shape=box, fontsize=10];\n";
  Array.iteri
    (fun b members ->
      add "  subgraph cluster_block_%d {\n    label=\"block %d\";\n    style=dashed;\n" b b;
      Array.iter
        (fun v ->
          add "    f%d [label=\"%s\"%s%s];\n" v
            (escape (Relational.Fact.to_string g.Solution_graph.facts.(v)))
            (if g.Solution_graph.self.(v) then ", color=red" else "")
            (if filled v then ", style=filled, fillcolor=lightblue" else ""))
        members;
      add "  }\n")
    g.Solution_graph.blocks;
  let edge = if directed then "->" else "--" in
  if directed then
    List.iter (fun (i, j) -> add "  f%d %s f%d;\n" i edge j) g.Solution_graph.directed
  else begin
    Array.iteri
      (fun i neighbours ->
        List.iter (fun j -> if i < j then add "  f%d %s f%d;\n" i edge j) neighbours)
      g.Solution_graph.adj;
    Array.iteri
      (fun i self -> if self then add "  f%d %s f%d;\n" i edge i)
      g.Solution_graph.self
  end;
  add "}\n";
  Buffer.contents buf

let solution_graph ?name ?directed g = render ?name ?directed g

let highlight_repair ?name g repair =
  render ?name ~filled:(fun v -> List.mem v repair) g
