let rec terms s t1 t2 =
  let t1 = Subst.apply_term s t1 and t2 = Subst.apply_term s t2 in
  match (t1, t2) with
  | Term.Cst v, Term.Cst w -> if Relational.Value.equal v w then Some s else None
  | Term.Var x, (Term.Var _ | Term.Cst _) ->
      if Term.equal t1 t2 then Some s else Subst.extend x t2 s
  | Term.Cst _, Term.Var _ -> terms s t2 t1

let arrays s ts1 ts2 =
  if Array.length ts1 <> Array.length ts2 then None
  else
    let rec go s i =
      if i >= Array.length ts1 then Some s
      else
        match terms s ts1.(i) ts2.(i) with
        | None -> None
        | Some s' -> go s' (i + 1)
    in
    go s 0

let atoms s a1 a2 =
  if not (String.equal a1.Atom.rel a2.Atom.rel) then None
  else arrays s a1.Atom.args a2.Atom.args

let match_fact s a f = atoms s a (Atom.of_fact f)

module Fresh = struct
  type t = { prefix : string; mutable next : int }

  let create ?(prefix = "_v") () = { prefix; next = 0 }

  let name g =
    let n = g.next in
    g.next <- n + 1;
    Printf.sprintf "%s%d" g.prefix n

  let var g = Term.Var (name g)
end
