module Schema = Relational.Schema
module Fact = Relational.Fact
module Database = Relational.Database
module Value = Relational.Value

let ( let* ) = Result.bind

type token =
  | Ident of string
  | Lpar
  | Rpar
  | Bar
  | Lbracket
  | Rbracket
  | Comma

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '-' || c = '<' || c = '>'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | '|' -> go (i + 1) (Bar :: acc)
      | '[' -> go (i + 1) (Lbracket :: acc)
      | ']' -> go (i + 1) (Rbracket :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '&' when i + 1 < n && s.[i + 1] = '&' -> go (i + 2) acc
      | '/' when i + 1 < n && s.[i + 1] = '\\' -> go (i + 2) acc
      | '\xe2' when i + 2 < n && s.[i + 1] = '\x88' && s.[i + 2] = '\xa7' ->
          (* UTF-8 for the conjunction sign *)
          go (i + 3) acc
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

let value_of_ident id =
  match int_of_string_opt id with Some n -> Value.int n | None -> Value.str id

let term_of_ident id =
  match int_of_string_opt id with
  | Some n -> Term.cst (Value.int n)
  | None ->
      let c = id.[0] in
      if (c >= 'a' && c <= 'z') || c = '_' then Term.var id
      else Term.cst (Value.str id)

(* Parses [Name ( arg ... arg | arg ... arg )]; returns name, args, bar pos. *)
let parse_tuple tokens =
  match tokens with
  | Ident name :: Lpar :: rest ->
      let rec args acc bar i = function
        | Rpar :: rest -> Ok ((name, List.rev acc, bar), rest)
        | Bar :: rest ->
            if bar = None then args acc (Some i) i rest
            else Error "duplicate key separator '|'"
        | Ident id :: rest -> args (id :: acc) bar (i + 1) rest
        | Comma :: rest -> args acc bar i rest
        | (Lpar | Lbracket | Rbracket) :: _ -> Error "malformed tuple"
        | [] -> Error "unexpected end of input, expected ')'"
      in
      args [] None 0 rest
  | _ -> Error "expected an atom of the form Name(...)"

let query s =
  let* tokens = tokenize s in
  let* (name_a, args_a, bar_a), rest = parse_tuple tokens in
  let* (name_b, args_b, bar_b), rest = parse_tuple rest in
  let* () = if rest = [] then Ok () else Error "trailing input after second atom" in
  let* () =
    if String.equal name_a name_b then Ok ()
    else Error "the two atoms must use the same relation symbol"
  in
  let arity = List.length args_a in
  let* () =
    if List.length args_b = arity then Ok ()
    else Error "the two atoms must have the same arity"
  in
  let* () = if arity > 0 then Ok () else Error "atoms must have arity >= 1" in
  let* key_len =
    match (bar_a, bar_b) with
    | Some l, Some l' when l = l' -> Ok l
    | Some l, None | None, Some l -> Ok l
    | None, None -> Ok arity
    | Some l, Some l' ->
        Error (Printf.sprintf "inconsistent key separators (%d vs %d)" l l')
  in
  let schema = Schema.make ~name:name_a ~arity ~key_len in
  let atom name args = Atom.make name (List.map term_of_ident args) in
  Query.make schema (atom name_a args_a) (atom name_b args_b)

let query_exn s =
  match query s with Ok q -> q | Error msg -> invalid_arg ("Parse.query: " ^ msg)

let fact s =
  let* tokens = tokenize s in
  let* (name, args, bar), rest = parse_tuple tokens in
  let* () = if rest = [] then Ok () else Error "trailing input after fact" in
  let* () = if args <> [] then Ok () else Error "facts must have arity >= 1" in
  Ok (Fact.make name (List.map value_of_ident args), bar)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse_schema_decl tokens =
  match tokens with
  | [ Ident name; Lbracket; Ident k; Comma; Ident l; Rbracket ] -> (
      match (int_of_string_opt k, int_of_string_opt l) with
      | Some arity, Some key_len -> Some (Schema.make ~name ~arity ~key_len)
      | _, _ -> None)
  | _ -> None

let database s =
  let lines =
    String.split_on_char '\n' s
    |> List.map strip_comment
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec go schemas pending = function
    | [] -> Ok (List.rev schemas, List.rev pending)
    | line :: rest -> (
        let* tokens = tokenize line in
        match parse_schema_decl tokens with
        | Some sc -> go (sc :: schemas) pending rest
        | None ->
            let* f, bar = fact line in
            go schemas ((f, bar) :: pending) rest)
  in
  let* schemas, facts = go [] [] lines in
  (* Infer schemas for relations without a declaration, using the bar. *)
  let* schemas =
    List.fold_left
      (fun acc (f, bar) ->
        let* acc = acc in
        let rel = f.Fact.rel in
        if List.exists (fun (sc : Schema.t) -> String.equal sc.Schema.name rel) acc
        then Ok acc
        else
          match bar with
          | Some key_len ->
              Ok (Schema.make ~name:rel ~arity:(Fact.arity f) ~key_len :: acc)
          | None ->
              Error
                (Printf.sprintf
                   "no schema for relation %s: declare %s[k,l] or use a '|'" rel rel))
      (Ok schemas) facts
  in
  let* () = if schemas <> [] then Ok () else Error "empty database file" in
  try Ok (Database.of_facts schemas (List.map fst facts))
  with Invalid_argument msg -> Error msg

let database_exn s =
  match database s with
  | Ok db -> db
  | Error msg -> invalid_arg ("Parse.database: " ^ msg)

(* Minimal CSV: separator-split with support for double-quoted cells
   (doubled quotes escape). *)
let split_csv_line separator line =
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  let rec go i in_quotes =
    if i >= n then begin
      flush ();
      Ok (List.rev !cells)
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' && Buffer.length buf = 0 then go (i + 1) true
      else if c = separator then begin
        flush ();
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false

let csv ?(separator = ',') ?(skip_header = false) ~schema s =
  let lines =
    String.split_on_char '\n' s
    |> List.map (fun l -> String.trim l)
    |> List.filter (fun l -> l <> "")
  in
  let lines =
    if skip_header then match lines with _ :: r -> r | [] -> [] else lines
  in
  let arity = schema.Schema.arity in
  let* facts =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* cells = split_csv_line separator line in
        if List.length cells <> arity then
          Error
            (Printf.sprintf "csv row %S has %d cells, expected %d" line
               (List.length cells) arity)
        else
          let values =
            List.map
              (fun cell ->
                let cell = String.trim cell in
                match int_of_string_opt cell with
                | Some n -> Value.int n
                | None -> Value.str cell)
              cells
          in
          Ok (Fact.make schema.Schema.name values :: acc))
      (Ok []) lines
  in
  try Ok (Database.of_facts [ schema ] (List.rev facts))
  with Invalid_argument msg -> Error msg
