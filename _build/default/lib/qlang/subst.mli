(** Substitutions: finite maps from variables to terms.

    Substitutions are kept idempotent ({e fully applied}): no variable in the
    range is also in the domain. [extend] and [Unify] maintain this invariant,
    so [apply] never needs to chase chains. *)

type t

val empty : t
val is_empty : t -> bool

(** [find x s] is the binding of [x], if any. *)
val find : Term.var -> t -> Term.t option

(** [bindings s] lists the bindings in variable order. *)
val bindings : t -> (Term.var * Term.t) list

(** [apply_term s t] applies the substitution to a term. *)
val apply_term : t -> Term.t -> Term.t

(** [apply_atom s a] applies the substitution to every argument of [a]. *)
val apply_atom : t -> Atom.t -> Atom.t

(** [extend x t s] binds [x := t], first applying [s] to [t] and rewriting the
    existing range so idempotence is preserved. Binding [x] to [Var x] is the
    identity. Returns [None] if [x] is already bound to a different term. *)
val extend : Term.var -> Term.t -> t -> t option

(** [of_var_map m] builds a substitution from an association map produced by
    e.g. {!Atom.homomorphism}. The map must already be idempotent. *)
val of_var_map : Term.t Term.Var_map.t -> t

val pp : Format.formatter -> t -> unit
