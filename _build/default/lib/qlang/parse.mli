(** Concrete syntax for queries, facts and databases.

    Query syntax mirrors the paper's underlined-key notation using a bar:

    {v R(x u | x y) R(u y | x z) v}

    denotes [q2 = R(xu xy) ∧ R(uy xz)] over signature [\[4, 2\]]. The two
    atoms may be separated by whitespace, [","], ["&&"] or ["/\\"]. Tokens
    starting with a lowercase letter or [_] are variables; integers and
    capitalised or quoted tokens are constants. The bar may be omitted when
    all positions are key positions.

    Fact and database syntax uses the same shape with values only:

    {v
    # blocks of R[2,1]
    R(1 | a)
    R(1 | b)
    R(2 | a)
    v}

    A database file may start with schema declarations [R\[k,l\]]; otherwise
    the schema is inferred from the first fact of each relation together with
    the mandatory bar. *)

(** [query s] parses a two-atom self-join query. *)
val query : string -> (Query.t, string) result

(** [query_exn s] is [query] raising [Invalid_argument]. *)
val query_exn : string -> Query.t

(** [fact s] parses a single fact such as [R(1 2 | a b)], returning the fact
    and its inferred key length (position of the bar), if a bar is present. *)
val fact : string -> (Relational.Fact.t * int option, string) result

(** [database s] parses a database file: one fact per line, [#] comments,
    optional [R\[k,l\]] schema declarations. *)
val database : string -> (Relational.Database.t, string) result

val database_exn : string -> Relational.Database.t

(** [csv ~schema s] loads a single relation from CSV text: one row per fact,
    [separator]-separated values (default [',']), columns in schema position
    order. Numeric cells become integer values, other cells strings; cells
    may be double-quoted. A first row that repeats the relation's column
    count but matches no data shape is {e not} skipped — strip headers before
    calling, or pass [skip_header:true]. *)
val csv :
  ?separator:char ->
  ?skip_header:bool ->
  schema:Relational.Schema.t ->
  string ->
  (Relational.Database.t, string) result
