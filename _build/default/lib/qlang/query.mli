(** Two-atom Boolean conjunctive queries with self-join: [q = A /\ B] where
    both atoms use the same relation symbol. All variables are existentially
    quantified, so a query is fully described by its two atoms and the schema.

    The module also implements the paper's triviality analysis (Section 2):
    [q] is equivalent to a one-atom query — and CERTAIN(q) is then trivially
    in PTIME — iff there is a homomorphism between its atoms or the two key
    tuples coincide. *)

type t = private {
  schema : Relational.Schema.t;
  a : Atom.t;  (** The paper's atom [A]. *)
  b : Atom.t;  (** The paper's atom [B]. *)
}

(** [make schema a b] validates that both atoms fit [schema]. *)
val make : Relational.Schema.t -> Atom.t -> Atom.t -> (t, string) result

(** [make_exn schema a b] is [make] raising [Invalid_argument] on error. *)
val make_exn : Relational.Schema.t -> Atom.t -> Atom.t -> t

(** [swap q] is the equivalent query [BA]. *)
val swap : t -> t

(** [vars q] is [vars(A) ∪ vars(B)]. *)
val vars : t -> Term.Var_set.t

(** [shared_vars q] is [vars(A) ∩ vars(B)]. *)
val shared_vars : t -> Term.Var_set.t

val vars_a : t -> Term.Var_set.t
val vars_b : t -> Term.Var_set.t

(** [key_a q] is the paper's [key(A)]: the variables in key positions of A. *)
val key_a : t -> Term.Var_set.t

val key_b : t -> Term.Var_set.t

(** Why a query is equivalent to a one-atom query, when it is. *)
type triviality =
  | Hom_a_to_b  (** A homomorphism maps [A] into [B], so [q ≡ B]. *)
  | Hom_b_to_a  (** A homomorphism maps [B] into [A], so [q ≡ A]. *)
  | Equal_key_tuples
      (** [key-bar(A) = key-bar(B)]: over consistent databases both atoms must
          be matched by the same fact, so [q] is equivalent to a one-atom
          query. *)

(** [triviality q] detects equivalence to a one-atom query. [None] means [q]
    is a genuine two-atom query, the paper's standing assumption. *)
val triviality : t -> triviality option

(** [rename f q] renames every variable in both atoms. *)
val rename : (Term.var -> Term.var) -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Prints as [R(x u | x y) ∧ R(u y | x z)]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
