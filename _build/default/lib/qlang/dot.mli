(** Graphviz (DOT) export of solution graphs.

    Facts are nodes grouped into clusters by block; undirected solution
    edges, self-loops and (optionally) the directed solution orientation are
    drawn. Feed the output to [dot -Tsvg] to inspect why a database is or is
    not certain. *)

(** [solution_graph ?name ?directed g] renders [g]. With [directed = true]
    (default [false]) each solution [q(a b)] is drawn as an arrow [a -> b];
    otherwise solutions are undirected edges. *)
val solution_graph : ?name:string -> ?directed:bool -> Solution_graph.t -> string

(** [highlight_repair g repair] renders [g] with the vertices of [repair]
    (one per block) filled — a visual consistency check of a falsifying
    repair. *)
val highlight_repair : ?name:string -> Solution_graph.t -> int list -> string
