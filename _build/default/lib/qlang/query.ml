module Schema = Relational.Schema

type t = { schema : Schema.t; a : Atom.t; b : Atom.t }

let make schema a b =
  if not (Atom.fits schema a) then
    Error (Format.asprintf "atom %a does not fit schema %a" Atom.pp a Schema.pp schema)
  else if not (Atom.fits schema b) then
    Error (Format.asprintf "atom %a does not fit schema %a" Atom.pp b Schema.pp schema)
  else Ok { schema; a; b }

let make_exn schema a b =
  match make schema a b with Ok q -> q | Error msg -> invalid_arg ("Query.make: " ^ msg)

let swap q = { q with a = q.b; b = q.a }
let vars_a q = Atom.vars q.a
let vars_b q = Atom.vars q.b
let vars q = Term.Var_set.union (vars_a q) (vars_b q)
let shared_vars q = Term.Var_set.inter (vars_a q) (vars_b q)
let key_a q = Atom.key_vars q.schema q.a
let key_b q = Atom.key_vars q.schema q.b

type triviality = Hom_a_to_b | Hom_b_to_a | Equal_key_tuples

(* Atom [from] is redundant iff a homomorphism sends it onto [into] while
   fixing [into] pointwise — mapping the whole query into the atom [into].
   Since [h(into) = into] positionally forces [h] to be the identity on
   [vars(into)], it suffices to check that the positional map [from -> into]
   fixes the shared variables. *)
let redundant ~from ~into =
  match Atom.homomorphism ~from ~into with
  | None -> false
  | Some h ->
      let shared = Term.Var_set.inter (Atom.vars from) (Atom.vars into) in
      Term.Var_set.for_all
        (fun v ->
          match Term.Var_map.find_opt v h with
          | None -> true
          | Some t -> Term.equal t (Term.Var v))
        shared

let triviality q =
  if redundant ~from:q.a ~into:q.b then Some Hom_a_to_b
  else if redundant ~from:q.b ~into:q.a then Some Hom_b_to_a
  else if
    List.for_all2 Term.equal (Atom.key_tuple q.schema q.a) (Atom.key_tuple q.schema q.b)
  then Some Equal_key_tuples
  else None

let rename f q = { q with a = Atom.rename f q.a; b = Atom.rename f q.b }
let equal q1 q2 = Schema.equal q1.schema q2.schema && Atom.equal q1.a q2.a && Atom.equal q1.b q2.b

let compare q1 q2 =
  let c = Schema.compare q1.schema q2.schema in
  if c <> 0 then c
  else
    let c = Atom.compare q1.a q2.a in
    if c <> 0 then c else Atom.compare q1.b q2.b

let pp ppf q =
  Format.fprintf ppf "@[<h>%a \u{2227} %a@]"
    (Atom.pp_with_key q.schema) q.a
    (Atom.pp_with_key q.schema) q.b

let to_string q = Format.asprintf "%a" pp q
