type var = string

type t =
  | Var of var
  | Cst of Relational.Value.t

let var x = Var x
let cst v = Cst v
let is_var = function Var _ -> true | Cst _ -> false

let compare t1 t2 =
  match (t1, t2) with
  | Var x, Var y -> String.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1
  | Cst v, Cst w -> Relational.Value.compare v w

let equal t1 t2 = compare t1 t2 = 0

let pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst v -> Format.fprintf ppf "'%a'" Relational.Value.pp v

let to_string t = Format.asprintf "%a" pp t

module Var_set = Set.Make (String)
module Var_map = Map.Make (String)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
