module Schema = Relational.Schema
module Fact = Relational.Fact
module Database = Relational.Database
module Value = Relational.Value

type t = { s1 : Schema.t; s2 : Schema.t; a : Atom.t; b : Atom.t }

let of_query (q : Query.t) =
  let s = q.Query.schema in
  let name1 = s.Schema.name ^ "1" and name2 = s.Schema.name ^ "2" in
  let s1 = Schema.make ~name:name1 ~arity:s.Schema.arity ~key_len:s.Schema.key_len in
  let s2 = Schema.make ~name:name2 ~arity:s.Schema.arity ~key_len:s.Schema.key_len in
  { s1; s2; a = Atom.with_rel name1 q.Query.a; b = Atom.with_rel name2 q.Query.b }

let schemas s = [ s.s1; s.s2 ]
let solution_graph s db = Solution_graph.of_atoms s.a s.b db
let satisfies s facts = Solutions.satisfies s.a s.b facts

let encode_term t =
  match t with
  | Term.Var x -> Value.str x
  | Term.Cst v -> Value.tag "c" v

let reduce (q : Query.t) db =
  let s = (of_query q : t) in
  let mu atom (f : Fact.t) =
    let tuple =
      Array.mapi
        (fun i u -> Value.pair (encode_term (Atom.nth atom i)) u)
        f.Fact.tuple
    in
    Fact.of_array q.Query.schema.Schema.name tuple
  in
  let images =
    List.map
      (fun (f : Fact.t) ->
        if String.equal f.Fact.rel s.s1.Schema.name then mu q.Query.a f
        else if String.equal f.Fact.rel s.s2.Schema.name then mu q.Query.b f
        else
          invalid_arg
            (Printf.sprintf "Sjf.reduce: unexpected relation %s" f.Fact.rel))
      (Database.facts db)
  in
  Database.of_facts [ q.Query.schema ] images
