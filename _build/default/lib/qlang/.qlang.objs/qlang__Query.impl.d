lib/qlang/query.ml: Atom Format List Relational Term
