lib/qlang/subst.ml: Array Atom Format Term
