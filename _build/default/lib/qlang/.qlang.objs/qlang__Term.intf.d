lib/qlang/term.mli: Format Map Relational Set
