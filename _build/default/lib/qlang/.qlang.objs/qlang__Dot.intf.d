lib/qlang/dot.mli: Solution_graph
