lib/qlang/parse.mli: Query Relational
