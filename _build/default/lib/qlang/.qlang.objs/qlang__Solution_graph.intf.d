lib/qlang/solution_graph.mli: Atom Format Query Relational
