lib/qlang/atom.ml: Array Format Int List Printf Relational String Term
