lib/qlang/unify.ml: Array Atom Printf Relational String Subst Term
