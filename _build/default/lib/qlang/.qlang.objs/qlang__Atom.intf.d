lib/qlang/atom.mli: Format Relational Term
