lib/qlang/query.mli: Atom Format Relational Term
