lib/qlang/solutions.mli: Atom Query Relational Subst
