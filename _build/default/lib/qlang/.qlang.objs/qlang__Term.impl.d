lib/qlang/term.ml: Format Map Relational Set String
