lib/qlang/parse.ml: Atom Buffer List Printf Query Relational Result String Term
