lib/qlang/unify.mli: Atom Relational Subst Term
