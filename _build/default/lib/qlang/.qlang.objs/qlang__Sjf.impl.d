lib/qlang/sjf.ml: Array Atom List Printf Query Relational Solution_graph Solutions String Term
