lib/qlang/subst.mli: Atom Format Term
