lib/qlang/solutions.ml: List Option Query Relational Subst Unify
