lib/qlang/sjf.mli: Atom Query Relational Solution_graph
