lib/qlang/solution_graph.ml: Array Format Int List Query Queue Relational Solutions String
