lib/qlang/dot.ml: Array Buffer List Printf Relational Solution_graph String
