(** Syntactic unification of terms and atoms.

    Terms here are flat (variables or constants), so unification is the
    simple union-find-free variant: no occurs check is needed. Used by query
    evaluation (matching atoms against facts) and by the symbolic tripath
    search of the core library. *)

(** [terms s t1 t2] unifies two terms under an existing substitution,
    returning the extended most general unifier. *)
val terms : Subst.t -> Term.t -> Term.t -> Subst.t option

(** [arrays s ts1 ts2] unifies position-wise; the arrays must have equal
    length, otherwise [None]. *)
val arrays : Subst.t -> Term.t array -> Term.t array -> Subst.t option

(** [atoms s a1 a2] unifies two atoms (same relation symbol and arity
    required). *)
val atoms : Subst.t -> Atom.t -> Atom.t -> Subst.t option

(** [match_fact s a f] unifies atom [a] with the ground atom of fact [f]:
    the result binds variables of [a] to constants. *)
val match_fact : Subst.t -> Atom.t -> Relational.Fact.t -> Subst.t option

(** A stateful generator of fresh variable names ["prefix0", "prefix1", ...].
    Distinct generators with distinct prefixes never collide. *)
module Fresh : sig
  type t

  val create : ?prefix:string -> unit -> t
  val var : t -> Term.t
  val name : t -> Term.var
end
