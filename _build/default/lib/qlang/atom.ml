module Schema = Relational.Schema
module Fact = Relational.Fact

type t = { rel : string; args : Term.t array }

let of_array rel args =
  if Array.length args = 0 then invalid_arg "Atom.of_array: empty argument list";
  { rel; args = Array.copy args }

let make rel terms = of_array rel (Array.of_list terms)
let arity a = Array.length a.args

let nth a i =
  if i < 0 || i >= arity a then invalid_arg "Atom.nth: out of bounds";
  a.args.(i)

let vars a =
  Array.fold_left
    (fun acc t -> match t with Term.Var x -> Term.Var_set.add x acc | Term.Cst _ -> acc)
    Term.Var_set.empty a.args

let fits (s : Schema.t) a = String.equal s.Schema.name a.rel && s.Schema.arity = arity a

let check_fits s a =
  if not (fits s a) then
    invalid_arg
      (Format.asprintf "Atom: atom %s/%d does not match schema %a" a.rel (arity a)
         Schema.pp s)

let key_tuple s a =
  check_fits s a;
  List.map (fun i -> a.args.(i)) (Schema.key_positions s)

let vars_of_positions a positions =
  List.fold_left
    (fun acc i ->
      match a.args.(i) with
      | Term.Var x -> Term.Var_set.add x acc
      | Term.Cst _ -> acc)
    Term.Var_set.empty positions

let key_vars s a =
  check_fits s a;
  vars_of_positions a (Schema.key_positions s)

let nonkey_vars s a =
  check_fits s a;
  vars_of_positions a (Schema.nonkey_positions s)

let is_ground a = Array.for_all (fun t -> not (Term.is_var t)) a.args

let to_fact a =
  let values =
    Array.map
      (function
        | Term.Cst v -> v
        | Term.Var x ->
            invalid_arg (Printf.sprintf "Atom.to_fact: free variable %s" x))
      a.args
  in
  Fact.of_array a.rel values

let of_fact (f : Fact.t) = { rel = f.Fact.rel; args = Array.map Term.cst f.Fact.tuple }

let rename f a =
  {
    a with
    args =
      Array.map
        (function Term.Var x -> Term.Var (f x) | Term.Cst _ as c -> c)
        a.args;
  }

let with_rel rel a = { a with rel }

let homomorphism ~from ~into =
  if not (String.equal from.rel into.rel && arity from = arity into) then None
  else
    let exception Clash in
    try
      let h = ref Term.Var_map.empty in
      Array.iteri
        (fun i t ->
          let target = into.args.(i) in
          match t with
          | Term.Cst v -> (
              match target with
              | Term.Cst w when Relational.Value.equal v w -> ()
              | Term.Cst _ | Term.Var _ -> raise Clash)
          | Term.Var x -> (
              match Term.Var_map.find_opt x !h with
              | None -> h := Term.Var_map.add x target !h
              | Some t' -> if not (Term.equal t' target) then raise Clash))
        from.args;
      Some !h
    with Clash -> None

let compare a1 a2 =
  let c = String.compare a1.rel a2.rel in
  if c <> 0 then c
  else
    let c = Int.compare (arity a1) (arity a2) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= arity a1 then 0
        else
          let c = Term.compare a1.args.(i) a2.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a1 a2 = compare a1 a2 = 0

let pp ppf a =
  Format.fprintf ppf "@[<h>%s(%a)@]" a.rel
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Term.pp)
    a.args

let pp_with_key s ppf a =
  check_fits s a;
  let l = s.Schema.key_len in
  Format.fprintf ppf "@[<h>%s(" a.rel;
  Array.iteri
    (fun i t ->
      if i > 0 then Format.pp_print_string ppf " ";
      if i = l && l < arity a then Format.pp_print_string ppf "| ";
      Term.pp ppf t)
    a.args;
  Format.fprintf ppf ")@]"

let to_string a = Format.asprintf "%a" pp a
