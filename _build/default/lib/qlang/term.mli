(** Terms: variables or constants.

    Atom positions hold terms. The symbolic tripath search of the core library
    also uses terms as "symbolic elements" of candidate databases. *)

type var = string

type t =
  | Var of var
  | Cst of Relational.Value.t

val var : string -> t
val cst : Relational.Value.t -> t

val is_var : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Var_set : Set.S with type elt = var
module Var_map : Map.S with type key = var
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
