(** Atoms [R(t1, ..., tk)] over a schema with primary key.

    In the paper atoms carry only variables; we additionally allow constants,
    which costs nothing and makes the library usable for concrete query
    workloads. All the paper-level notions ([vars], [key], [key-bar], ...)
    are exposed here. *)

type t = private { rel : string; args : Term.t array }

(** [make rel terms] builds an atom with a non-empty argument list.
    @raise Invalid_argument on an empty argument list. *)
val make : string -> Term.t list -> t

val of_array : string -> Term.t array -> t
val arity : t -> int

(** [nth a i] is the term at position [i] (0-based). *)
val nth : t -> int -> Term.t

(** The set of variables of the atom — the paper's [vars(A)]. *)
val vars : t -> Term.Var_set.t

(** [fits schema a] checks relation name and arity against [schema]. *)
val fits : Relational.Schema.t -> t -> bool

(** [key_tuple schema a] is the tuple of terms in key positions — the paper's
    [key-bar(A)].
    @raise Invalid_argument if [a] does not fit [schema]. *)
val key_tuple : Relational.Schema.t -> t -> Term.t list

(** [key_vars schema a] is the set of {e variables} occurring in key positions
    — the paper's [key(A)]. *)
val key_vars : Relational.Schema.t -> t -> Term.Var_set.t

(** [nonkey_vars schema a] is the set of variables in non-key positions. *)
val nonkey_vars : Relational.Schema.t -> t -> Term.Var_set.t

(** [is_ground a] holds when the atom has no variables. *)
val is_ground : t -> bool

(** [to_fact a] converts a ground atom to a fact.
    @raise Invalid_argument if [a] has variables. *)
val to_fact : t -> Relational.Fact.t

(** [of_fact f] views a fact as a ground atom. *)
val of_fact : Relational.Fact.t -> t

(** [rename f a] applies [f] to every variable of [a]. *)
val rename : (Term.var -> Term.var) -> t -> t

(** [with_rel rel a] is [a] with its relation symbol replaced by [rel]. *)
val with_rel : string -> t -> t

(** [homomorphism ~from ~into] looks for a variable mapping [h] with
    [h(from) = into], position-wise; constants must match exactly. Returns
    the witnessing assignment. Both atoms must have the same relation symbol
    and arity, otherwise [None]. *)
val homomorphism : from:t -> into:t -> Term.t Term.Var_map.t option

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Prints with the key/non-key separator bar, e.g. [R(x u | x y)]. *)
val pp_with_key : Relational.Schema.t -> Format.formatter -> t -> unit

val to_string : t -> string
