(** The canonical self-join-free variant [sjf(q)] of a query, and the
    reduction of Proposition 2.

    [sjf(q)] is [q] with the relation symbol of [A] renamed to [R1] and that
    of [B] renamed to [R2]. Proposition 2 gives a polynomial-time reduction
    from CERTAIN(sjf(q)) to CERTAIN(q): every fact [Ri(u1 ... uk)] of a
    two-relation database [D] is mapped to the [R]-fact whose position [j]
    holds the pair [⟨z_j, u_j⟩], where [z_j] is the term at position [j] of
    the corresponding atom. *)

type t = private {
  s1 : Relational.Schema.t;  (** Schema of [R1] (same arity/key as [R]). *)
  s2 : Relational.Schema.t;  (** Schema of [R2]. *)
  a : Atom.t;  (** [A] with relation renamed to [R1]. *)
  b : Atom.t;  (** [B] with relation renamed to [R2]. *)
}

(** [of_query q] renames [R] to [R ^ "1"] in [A] and [R ^ "2"] in [B]. *)
val of_query : Query.t -> t

(** Schemas of the two fresh relations, for building input databases. *)
val schemas : t -> Relational.Schema.t list

(** [solution_graph s db] is the solution graph of [sjf(q)] over a database
    with [R1]- and [R2]-facts. *)
val solution_graph : t -> Relational.Database.t -> Solution_graph.t

(** [satisfies s facts] decides [facts ⊨ sjf(q)]. *)
val satisfies : t -> Relational.Fact.t list -> bool

(** [reduce q db] is the Proposition 2 database [D' = μ(D)]: it maps the
    two-relation database [db] (over [schemas (of_query q)]) to a database
    over [q]'s single relation such that
    [D ⊨ CERTAIN(sjf(q))] iff [D' ⊨ CERTAIN(q)].
    @raise Invalid_argument if [db] contains facts of other relations. *)
val reduce : Query.t -> Relational.Database.t -> Relational.Database.t
