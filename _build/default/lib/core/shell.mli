(** A line-oriented command engine for interactive exploration — the engine
    behind [bin/cqa_repl].

    The engine is a pure-ish state machine ([exec] returns the new state and
    the output text), so the whole interaction surface is unit-testable
    without a terminal. Commands:

    {v
    query <two-atom query>     set and classify the query
    add <fact>                 add a fact, e.g.  add R(1 | 2)
    del <fact>                 remove a fact
    load <file>                load a database file (replaces facts)
    show                       print query, verdict and database
    blocks                     print the blocks (conflicts)
    certain                    decide CERTAIN with the designated algorithm
    explain                    Cert_k certificate or falsifying repair
    answers <x,y,...>          certain/possible answer tuples
    estimate [trials]          Monte-Carlo repair sampling
    dot                        solution graph in Graphviz format
    help                       this text
    v}

    [quit]/[exit] are left to the driving loop. *)

type state

(** A fresh state (no query, empty database). *)
val initial : state

(** [exec state line] parses and runs one command. Unknown commands and
    errors are reported in the output, never raised. *)
val exec : state -> string -> state * string

(** The help text. *)
val help : string
