module Query = Qlang.Query
module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database
module Cnf = Satsolver.Cnf

type t = {
  query : Query.t;
  tripath : Tripath.t;
  witness : Tripath.nice_witness;
}

let of_tripath tp =
  match Tripath.niceness tp with
  | Ok (Tripath.Fork, witness) -> Ok { query = tp.Tripath.query; tripath = tp; witness }
  | Ok (Tripath.Triangle, _) -> Error "the tripath is a triangle-tripath, not a fork"
  | Error errs -> Error (String.concat "; " errs)

let create ?opts q =
  match Tripath_search.find_nice ?opts ~want:Tripath.Fork q with
  | Some (tp, witness) -> Ok { query = q; tripath = tp; witness }
  | None -> Error "no nice fork-tripath found within the search bounds"

(* ------------------------------------------------------------------ *)
(* Value-level substitution of the six witness elements.               *)

let substitute_facts mapping facts =
  let subst v =
    match List.find_opt (fun (from, _) -> Value.equal from v) mapping with
    | Some (_, to_) -> to_
    | None -> v
  in
  List.map
    (fun (f : Fact.t) -> Fact.of_array f.Fact.rel (Array.map subst f.Fact.tuple))
    facts

(* Copy of the tripath facts under Θ[αx, αy, αz, αu, αv, αw]. The mapping is
   built first-come-first-served so that equal witness elements (x = y is
   allowed) receive equal images, as the paper requires. *)
let theta_copy g ~ax ~ay ~az ~au ~av ~aw =
  let w = g.witness in
  let mapping =
    List.fold_left
      (fun acc (from, to_) ->
        if List.exists (fun (f, _) -> Value.equal f from) acc then acc
        else (from, to_) :: acc)
      []
      [
        (w.Tripath.x, ax);
        (w.Tripath.y, ay);
        (w.Tripath.z, az);
        (w.Tripath.u, au);
        (w.Tripath.v, av);
        (w.Tripath.w, aw);
      ]
  in
  substitute_facts mapping (Database.facts (Tripath.database g.tripath))

(* ------------------------------------------------------------------ *)
(* Element encodings                                                   *)

let clause_val c = Value.tag "C" (Value.int c)
let var_val l = Value.tag "l" (Value.int l)

(* ⟨C, l⟩ annotated with the witness slot, keeping x/y/z copies disjoint. *)
let xyz_val slot c l = Value.pair (Value.pair (clause_val c) (var_val l)) (Value.str slot)

(* ⟨C, C', l⟩ — leaf identifiers shared between two copies. *)
let leaf_val c c' l = Value.triple (clause_val c) (clause_val c') (var_val l)

(* ------------------------------------------------------------------ *)
(* The database D(φ)                                                   *)

(* Occurrence analysis: for each variable, the clause indices where it
   occurs with its minority polarity ("positive" role, exactly one) and
   majority polarity. *)
type occurrence = {
  var : int;
  pos_clause : int;  (** The single clause of the minority-polarity literal. *)
  neg_clauses : int list;  (** One or two clauses of the other polarity. *)
}

let occurrences_of (phi : Cnf.t) =
  let table = Hashtbl.create 16 in
  List.iteri
    (fun ci clause ->
      List.iter
        (fun lit ->
          let v = abs lit in
          let pos, neg = Option.value ~default:([], []) (Hashtbl.find_opt table v) in
          if lit > 0 then Hashtbl.replace table v (ci :: pos, neg)
          else Hashtbl.replace table v (pos, ci :: neg))
        clause)
    phi.Cnf.clauses;
  Hashtbl.fold
    (fun v (pos, neg) acc ->
      match (pos, neg) with
      | [ c ], others | others, [ c ] ->
          { var = v; pos_clause = c; neg_clauses = List.rev others } :: acc
      | _, _ ->
          invalid_arg
            (Printf.sprintf
               "Gadget.database: variable %d does not have a single \
                minority-polarity occurrence"
               v))
    table []
  |> List.sort (fun o1 o2 -> Int.compare o1.var o2.var)

let variable_gadget g occ =
  let l = occ.var in
  let copy c ~v ~w =
    theta_copy g
      ~ax:(xyz_val "x" c l) ~ay:(xyz_val "y" c l) ~az:(xyz_val "z" c l)
      ~au:(clause_val c) ~av:v ~aw:w
  in
  match occ.neg_clauses with
  | [ c' ] ->
      (* V2: one positive clause c, one negative clause c'. *)
      let c = occ.pos_clause in
      copy c ~v:(leaf_val c c l) ~w:(leaf_val c c' l)
      @ copy c' ~v:(leaf_val c' c' l) ~w:(leaf_val c c' l)
  | [ c1; c2 ] ->
      (* V3: one positive clause c, negative clauses c1 and c2. *)
      let c = occ.pos_clause in
      copy c ~v:(leaf_val c c2 l) ~w:(leaf_val c c1 l)
      @ copy c1 ~v:(leaf_val c1 c1 l) ~w:(leaf_val c c1 l)
      @ copy c2 ~v:(leaf_val c c2 l) ~w:(leaf_val c2 c2 l)
  | [] | _ :: _ :: _ ->
      invalid_arg
        (Printf.sprintf
           "Gadget.database: variable %d has %d majority occurrences (expected 1 \
            or 2)"
           occ.var
           (List.length occ.neg_clauses))

(* A padding fact for a singleton block: same key, fresh non-key values. The
   construction is verified: the fact must form no solution with anything. *)
let pad_singletons (q : Query.t) db =
  let schema = q.Query.schema in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Value.tag "pad" (Value.int !counter)
  in
  let l = schema.Relational.Schema.key_len in
  let padded =
    List.fold_left
      (fun acc (block : Relational.Block.t) ->
        if Relational.Block.size block > 1 then acc
        else
          match block.Relational.Block.facts with
          | [ lone ] ->
              let tuple =
                Array.mapi
                  (fun i v -> if i < l then v else fresh ())
                  lone.Fact.tuple
              in
              Fact.of_array lone.Fact.rel tuple :: acc
          | [] | _ :: _ :: _ -> acc)
      [] (Database.blocks db)
  in
  let db' = List.fold_left Database.add db padded in
  (* Soundness check: padding facts participate in no solution. *)
  let pairs = Qlang.Solutions.query_pairs q db' in
  List.iter
    (fun p ->
      if
        List.exists
          (fun (s, t) -> Fact.equal s p || Fact.equal t p)
          pairs
      then
        invalid_arg
          (Format.asprintf
             "Gadget.database: padding fact %a forms a solution — the tripath \
              is not nice enough"
             Fact.pp p))
    padded;
  db'

let database g (phi : Cnf.t) =
  if not (Satsolver.Threesat.in_gadget_shape phi) then
    invalid_arg
      "Gadget.database: formula not in gadget shape (normalize it with \
       Threesat.normalize first)";
  let facts = List.concat_map (variable_gadget g) (occurrences_of phi) in
  let db = Database.of_facts [ g.query.Query.schema ] facts in
  pad_singletons g.query db

let certain g phi =
  Cqa.Exact.certain (Qlang.Solution_graph.of_query g.query (database g phi))
