(** Bounded symbolic search for tripaths (the decision procedure behind the
    dichotomy classification).

    The paper shows that tripath existence is decidable — if a fork-tripath
    exists there is one of exponential size — but gives no practical
    procedure. This module implements a unification-based search: candidate
    tripaths are built from {e symbolic facts} (atoms over fresh variables).
    The center [d, e, f] is the most general unifier of the branching pattern
    [q(de) ∧ q(ef)]; the spine and the two arms are grown by chase-like
    unification steps (one block at a time, two possible orientations of the
    parent/child solution); block siblings take fresh non-key variables.
    Remaining variables are finally instantiated with pairwise distinct fresh
    constants and the candidate is handed to the independent verifier
    {!Tripath.check}.

    Because the most general unifier may be {e too} general (some tripaths —
    and especially nice ones — require identifying variables that unification
    does not force, cf. Figure 1c), the search also enumerates additional
    identifications of center variables, up to [max_merges] merged pairs.

    The search is sound (every [Found] result is independently verified) and
    complete up to its bounds: [Not_found] means no tripath with at most
    [max_spine] spine blocks, [max_arm] blocks per arm and [max_merges]
    center identifications — which suffices for every query catalogued in the
    paper. *)

type options = {
  max_spine : int;  (** Internal blocks between root and center (default 3). *)
  max_arm : int;  (** Internal blocks between center and each leaf (default 3). *)
  max_merges : int;  (** Extra center-variable identifications (default 2). *)
  max_candidates : int;  (** Global work budget (default 200_000). *)
}

val default_options : options

type outcome =
  | Found of Tripath.t * Tripath.kind
  | Not_found  (** No tripath within the search bounds. *)

(** [search ?opts ?want q] looks for a verified tripath of [q]; [want]
    restricts the kind. Candidates are explored with fewer identifications
    first, so the returned witness is minimal in that sense. *)
val search : ?opts:options -> ?want:Tripath.kind -> Qlang.Query.t -> outcome

(** [find_any q], [find_fork q], [find_triangle q]: convenience wrappers. *)
val find_any : ?opts:options -> Qlang.Query.t -> outcome

val find_fork : ?opts:options -> Qlang.Query.t -> outcome
val find_triangle : ?opts:options -> Qlang.Query.t -> outcome

(** [find_nice ?opts ~want q] searches for a {e nice} tripath of the given
    kind (Proposition 8 guarantees one exists whenever a tripath of that kind
    does); used by the Theorem 12 gadget. *)
val find_nice :
  ?opts:options ->
  want:Tripath.kind ->
  Qlang.Query.t ->
  (Tripath.t * Tripath.nice_witness) option
