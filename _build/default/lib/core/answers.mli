(** Non-Boolean consistent query answering: certain answer {e tuples}.

    The paper treats Boolean queries; a practical system must return answer
    tuples. For a query [q(x̄) = A ∧ B] with free variables [x̄], the
    {e certain answers} over a database [D] are the tuples [ā] such that
    [q(ā)] holds in {e every} repair of [D] (and the {e possible answers}
    those holding in at least one repair).

    Both are computed by reduction to the Boolean case: candidate tuples are
    the projections of the witnessing assignments of [q] on [D]; each
    candidate is substituted into the query and the grounded Boolean query is
    classified and solved. Classification depends only on which candidate
    values coincide, so verdicts are cached per coincidence pattern — the
    dichotomy is decided once per pattern, not once per tuple. *)

type t = {
  tuple : Relational.Value.t list;  (** Values of the free variables, in order. *)
  certain : bool;  (** Holds in every repair. *)
}

(** [candidates ~free q db] lists the projections on [free] of all
    assignments witnessing [q] in [db] whose fact pair fits inside one
    repair. Certain and possible answers are always among them.
    @raise Invalid_argument if [free] is empty, repeats a variable or is not
    contained in [vars(q)]. *)
val candidates :
  free:Qlang.Term.var list ->
  Qlang.Query.t ->
  Relational.Database.t ->
  Relational.Value.t list list

(** [ground ~free q tuple] substitutes the tuple for the free variables,
    yielding the Boolean query [q(ā)]. *)
val ground :
  free:Qlang.Term.var list ->
  Qlang.Query.t ->
  Relational.Value.t list ->
  Qlang.Query.t

(** [evaluate ?k ~free q db] classifies and solves [q(ā)] for every
    candidate [ā], returning all candidates with their certainty verdict
    (tuples in lexicographic order). [k] as in {!Solver.certain}. *)
val evaluate :
  ?k:int ->
  free:Qlang.Term.var list ->
  Qlang.Query.t ->
  Relational.Database.t ->
  t list

(** [certain_answers ?k ~free q db] keeps only the certain tuples. *)
val certain_answers :
  ?k:int ->
  free:Qlang.Term.var list ->
  Qlang.Query.t ->
  Relational.Database.t ->
  Relational.Value.t list list

(** [possible_answers ~free q db] lists the tuples holding in at least one
    repair (exactly the candidates: each candidate's witnessing pair embeds
    in a repair). *)
val possible_answers :
  free:Qlang.Term.var list ->
  Qlang.Query.t ->
  Relational.Database.t ->
  Relational.Value.t list list
