(** Syntactic classification tests (Sections 3, 4, 6, 7 of the paper).

    For a two-atom query [q = AB], with [vars(X)] the variables of atom [X]
    and [key(X)] the variables in its key positions:

    - Theorem 3: if (1) [vars(A) ∩ vars(B) ⊄ key(A)] and
      [vars(A) ∩ vars(B) ⊄ key(B)] and [key(A) ⊄ key(B)] and
      [key(B) ⊄ key(A)]; and (2) [key(A) ⊄ vars(B)] or [key(B) ⊄ vars(A)],
      then CERTAIN(q) is coNP-complete (via the reduction of Proposition 2 to
      the self-join-free dichotomy of Kolaitis and Pema).
    - Theorem 4: if condition (1) fails — for [q] or its swap — then
      CERTAIN(q) = Cert_2(q), hence PTIME.
    - Otherwise [q] is {e 2way-determined}: [key(A) ⊄ key(B)],
      [key(B) ⊄ key(A)], [key(A) ⊆ vars(B)], [key(B) ⊆ vars(A)]; its
      complexity is governed by the tripath analysis. *)

(** Condition (1) of Theorem 3. Symmetric in [A]/[B]. *)
val thm3_condition1 : Qlang.Query.t -> bool

(** Condition (2) of Theorem 3. Symmetric in [A]/[B]. *)
val thm3_condition2 : Qlang.Query.t -> bool

(** Both conditions of Theorem 3: [q] is coNP-complete by the self-join-free
    reduction. *)
val thm3_conp_hard : Qlang.Query.t -> bool

(** Theorem 4 hypothesis, tried in both orientations:
    [key(A) ⊆ key(B)] or [vars(A) ∩ vars(B) ⊆ key(B)], or the same with the
    atoms swapped. Equivalent to the failure of {!thm3_condition1}. *)
val thm4_ptime : Qlang.Query.t -> bool

(** 2way-determinacy (Section 7): condition (1) holds and condition (2)
    fails. *)
val two_way_determined : Qlang.Query.t -> bool

(** The zig-zag property of Lemma 5 is implied by the Theorem 4 hypothesis;
    [zigzag_holds q db] checks it {e semantically} on a database (used by
    property tests): for all facts [a, b, b', c] with [a ≠ c], [a ≠ b],
    [b ~ b'], if [q(ab)] and [q(cb')] then [q(ab')]. *)
val zigzag_holds : Qlang.Query.t -> Relational.Database.t -> bool

(** Lemma 7, checked semantically: in any database, if [q(ab)] and [q(ac)]
    then [b ~ c], and if [q(ab)] and [q(cb)] then [a ~ c]. Holds whenever [q]
    is 2way-determined. *)
val lemma7_holds : Qlang.Query.t -> Relational.Database.t -> bool
