module Query = Qlang.Query
module Var_set = Qlang.Term.Var_set

let subset = Var_set.subset

let thm3_condition1 q =
  let shared = Query.shared_vars q in
  let ka = Query.key_a q and kb = Query.key_b q in
  (not (subset shared ka))
  && (not (subset shared kb))
  && (not (subset ka kb))
  && not (subset kb ka)

let thm3_condition2 q =
  let ka = Query.key_a q and kb = Query.key_b q in
  (not (subset ka (Query.vars_b q))) || not (subset kb (Query.vars_a q))

let thm3_conp_hard q = thm3_condition1 q && thm3_condition2 q

let thm4_ptime q = not (thm3_condition1 q)

let two_way_determined q = thm3_condition1 q && not (thm3_condition2 q)

let zigzag_holds q db =
  let facts = Relational.Database.facts db in
  let sol = Qlang.Solutions.query_solution_pair q in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          (not (sol a b))
          || List.for_all
               (fun b' ->
                 (not (Relational.Database.key_equal db b b'))
                 || List.for_all
                      (fun c ->
                        if
                          Relational.Fact.equal a c || Relational.Fact.equal a b
                          || not (sol c b')
                        then true
                        else sol a b')
                      facts)
               facts)
        facts)
    facts

let lemma7_holds q db =
  let pairs = Qlang.Solutions.query_pairs q db in
  List.for_all
    (fun (a, b) ->
      List.for_all
        (fun (c, d) ->
          (if Relational.Fact.equal a c then Relational.Database.key_equal db b d
           else true)
          && if Relational.Fact.equal b d then Relational.Database.key_equal db a c
             else true)
        pairs)
    pairs
