module Query = Qlang.Query
module Atom = Qlang.Atom
module Term = Qlang.Term
module Subst = Qlang.Subst
module Unify = Qlang.Unify
module Fact = Relational.Fact
module Value = Relational.Value

type options = {
  max_spine : int;
  max_arm : int;
  max_merges : int;
  max_candidates : int;
}

let default_options =
  { max_spine = 3; max_arm = 3; max_merges = 2; max_candidates = 200_000 }

type outcome = Found of Tripath.t * Tripath.kind | Not_found

(* Symbolic facts are atoms; a symbolic inner block pairs two of them. *)
type sym_inner = { sa : Atom.t; sb : Atom.t }

type candidate = {
  subst : Subst.t;
  root : Atom.t;
  spine : sym_inner list;
  center : sym_inner;
  arm1 : sym_inner list;
  leaf1 : Atom.t;
  arm2 : sym_inner list;
  leaf2 : Atom.t;
}

exception Found_exn of Tripath.t * Tripath.kind * Tripath.nice_witness option
exception Budget_exhausted

(* ------------------------------------------------------------------ *)
(* Fresh copies and siblings                                           *)

let copy_query gen (q : Query.t) =
  let mapping = Hashtbl.create 8 in
  let rename v =
    match Hashtbl.find_opt mapping v with
    | Some v' -> v'
    | None ->
        let v' = Unify.Fresh.name gen in
        Hashtbl.add mapping v v';
        v'
  in
  (Atom.rename rename q.Query.a, Atom.rename rename q.Query.b)

(* Sibling of a symbolic fact: same key terms, fresh non-key variables.
   Returns [None] when the relation has no non-key position (blocks of size
   two are then impossible). *)
let sibling gen (q : Query.t) subst atom =
  let schema = q.Query.schema in
  let l = schema.Relational.Schema.key_len in
  let arity = schema.Relational.Schema.arity in
  if l = arity then None
  else
    let atom = Subst.apply_atom subst atom in
    let args =
      Array.init arity (fun i ->
          if i < l then Atom.nth atom i else Unify.Fresh.var gen)
    in
    Some (Atom.of_array atom.Atom.rel args)

(* ------------------------------------------------------------------ *)
(* Symbolic endpoint pruning                                           *)

let term_key_set (q : Query.t) subst atom =
  List.fold_left
    (fun acc t -> Term.Set.add (Subst.apply_term subst t) acc)
    Term.Set.empty
    (Atom.key_tuple q.Query.schema (Subst.apply_atom subst atom))

(* Symbolic g(e): under the final distinct-constant instantiation, two terms
   denote the same element iff they are syntactically equal, so the concrete
   five-case definition can be evaluated on term sets. Subsethood can only
   grow under later unifications, so pruning a stop point whose endpoint key
   already includes g(e) is safe. *)
let g_sym (q : Query.t) subst ~d ~e ~f =
  let kd = term_key_set q subst d
  and ke = term_key_set q subst e
  and kf = term_key_set q subst f in
  let sub = Term.Set.subset in
  if sub kd ke && not (sub kf ke) then kd
  else if (not (sub kd ke)) && sub kf ke then kf
  else if sub kd kf && sub kf ke then kd
  else if sub kf kd && sub kd ke then kf
  else ke

let endpoint_not_pruned (q : Query.t) subst ~d ~e ~f endpoint =
  not (Term.Set.subset (g_sym q subst ~d ~e ~f) (term_key_set q subst endpoint))

(* ------------------------------------------------------------------ *)
(* Instantiation and verification                                      *)

let instantiate (q : Query.t) candidate =
  let counter = ref 0 in
  let assignment = Hashtbl.create 32 in
  let value_of v =
    match Hashtbl.find_opt assignment v with
    | Some value -> value
    | None ->
        let value = Value.tag "\u{03B8}" (Value.int !counter) in
        incr counter;
        Hashtbl.add assignment v value;
        value
  in
  let ground atom =
    let atom = Subst.apply_atom candidate.subst atom in
    Fact.of_array atom.Atom.rel
      (Array.map
         (function Term.Cst value -> value | Term.Var v -> value_of v)
         atom.Atom.args)
  in
  let ground_inner blk = { Tripath.fa = ground blk.sa; fb = ground blk.sb } in
  {
    Tripath.query = q;
    root = ground candidate.root;
    spine = List.map ground_inner candidate.spine;
    center = ground_inner candidate.center;
    arm1 = List.map ground_inner candidate.arm1;
    leaf1 = ground candidate.leaf1;
    arm2 = List.map ground_inner candidate.arm2;
    leaf2 = ground candidate.leaf2;
  }

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let search_internal ?(opts = default_options) ?want ~require_nice (q : Query.t) =
  let gen = Unify.Fresh.create ~prefix:"\u{03C3}" () in
  let budget = ref opts.max_candidates in
  let spend () =
    decr budget;
    if !budget <= 0 then raise Budget_exhausted
  in
  let try_candidate candidate =
    spend ();
    let tripath = instantiate q candidate in
    match Tripath.check tripath with
    | Error _ -> ()
    | Ok kind -> (
        let kind_ok = match want with None -> true | Some k -> k = kind in
        if kind_ok then
          if require_nice then
            match Tripath.niceness tripath with
            | Ok (kind, witness) -> raise (Found_exn (tripath, kind, Some witness))
            | Error _ -> ()
          else raise (Found_exn (tripath, kind, None)))
  in
  (* Grow one arm downward. [on_done] receives (subst, blocks, leaf). *)
  let rec grow_arm subst ~d ~e ~f cur_b blocks depth on_done =
    spend ();
    (* Stop: the current block is the leaf, containing only [cur_b]. *)
    if endpoint_not_pruned q subst ~d ~e ~f cur_b then
      on_done subst (List.rev blocks) cur_b;
    if depth < opts.max_arm then
      match sibling gen q subst cur_b with
      | None -> ()
      | Some sib ->
          let block = { sa = sib; sb = Subst.apply_atom subst cur_b } in
          List.iter
            (fun orientation ->
              let a_copy, b_copy = copy_query gen q in
              let pattern, child =
                match orientation with
                | `AB -> (a_copy, b_copy) (* q(sib, child) *)
                | `BA -> (b_copy, a_copy) (* q(child, sib) *)
              in
              match Unify.atoms subst pattern sib with
              | None -> ()
              | Some subst' ->
                  let child_b = Subst.apply_atom subst' child in
                  grow_arm subst' ~d ~e ~f child_b (block :: blocks) (depth + 1)
                    on_done)
            [ `AB; `BA ]
  in
  (* Grow the spine upward from the center sibling. [on_done] receives
     (subst, root, spine_top_down). *)
  let rec grow_up subst ~d ~e ~f cur_b blocks depth on_done =
    spend ();
    List.iter
      (fun orientation ->
        let a_copy, b_copy = copy_query gen q in
        let pattern, parent =
          match orientation with
          | `AB -> (b_copy, a_copy) (* q(parent, cur_b) *)
          | `BA -> (a_copy, b_copy) (* q(cur_b, parent) *)
        in
        match Unify.atoms subst pattern cur_b with
        | None -> ()
        | Some subst' ->
            let parent_a = Subst.apply_atom subst' parent in
            (* Stop: parent is the root. *)
            if endpoint_not_pruned q subst' ~d ~e ~f parent_a then
              on_done subst' parent_a blocks;
            (* Continue: the parent is an internal block. *)
            if depth < opts.max_spine then
              match sibling gen q subst' parent_a with
              | None -> ()
              | Some sib ->
                  let block = { sa = Subst.apply_atom subst' parent_a; sb = sib } in
                  grow_up subst' ~d ~e ~f sib (block :: blocks) (depth + 1) on_done)
      [ `AB; `BA ]
  in
  (* Center variants: the mgu of the branching pattern, optionally with the
     triangle constraint and/or extra variable identifications. *)
  let base_center () =
    let a1, b1 = copy_query gen q in
    let a2, b2 = copy_query gen q in
    match Unify.atoms Subst.empty b1 a2 with
    | None -> None
    | Some subst -> Some (subst, a1, b1, b2)
    (* d = a1, e = b1 (= a2), f = b2 *)
  in
  let center_vars subst atoms =
    List.fold_left
      (fun acc atom -> Term.Var_set.union acc (Atom.vars (Subst.apply_atom subst atom)))
      Term.Var_set.empty atoms
    |> Term.Var_set.elements
  in
  let merge_choices subst d e f =
    let vars = center_vars subst [ d; e; f ] in
    let pairs =
      List.concat_map
        (fun v1 ->
          List.filter_map
            (fun v2 -> if String.compare v1 v2 < 0 then Some (v1, v2) else None)
            vars)
        vars
    in
    (* Merge sets of size 0, 1, ..., max_merges, in that order. *)
    let rec subsets_of_size k lst =
      if k = 0 then [ [] ]
      else
        match lst with
        | [] -> []
        | x :: rest ->
            List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
            @ subsets_of_size k rest
    in
    List.concat_map (fun k -> subsets_of_size k pairs)
      (List.init (opts.max_merges + 1) (fun i -> i))
  in
  let apply_merges subst merges =
    List.fold_left
      (fun acc (v1, v2) ->
        match acc with
        | None -> None
        | Some s -> Unify.terms s (Term.Var v1) (Term.Var v2))
      (Some subst) merges
  in
  let run_center subst d e f =
    match sibling gen q subst e with
    | None -> () (* the center block needs two facts *)
    | Some e_sib ->
        let center = { sa = Subst.apply_atom subst e; sb = e_sib } in
        grow_up subst ~d ~e ~f e_sib [] 0 (fun subst root spine ->
            grow_arm subst ~d ~e ~f (Subst.apply_atom subst d) [] 0
              (fun subst arm1 leaf1 ->
                grow_arm subst ~d ~e ~f (Subst.apply_atom subst f) [] 0
                  (fun subst arm2 leaf2 ->
                    try_candidate
                      { subst; root; spine; center; arm1; leaf1; arm2; leaf2 })))
  in
  try
    (match base_center () with
    | None -> ()
    | Some (subst0, d, e, f) ->
        let variants =
          (* The plain mgu center, all merge variants, and — when searching
             for triangles — the center with q(fd) enforced by unification. *)
          let merged =
            List.filter_map
              (fun merges -> apply_merges subst0 merges)
              (merge_choices subst0 d e f)
          in
          let triangle_enforced =
            if want = Some Tripath.Triangle || want = None then
              List.filter_map
                (fun subst ->
                  let a3, b3 = copy_query gen q in
                  match Unify.atoms subst a3 (Subst.apply_atom subst f) with
                  | None -> None
                  | Some s -> Unify.atoms s b3 (Subst.apply_atom s d))
                merged
            else []
          in
          merged @ triangle_enforced
        in
        List.iter (fun subst -> run_center subst d e f) variants);
    Not_found
  with
  | Found_exn (tripath, kind, _) -> Found (tripath, kind)
  | Budget_exhausted -> Not_found

let search ?opts ?want q = search_internal ?opts ?want ~require_nice:false q
let find_any ?opts q = search ?opts q
let find_fork ?opts q = search ?opts ~want:Tripath.Fork q
let find_triangle ?opts q = search ?opts ~want:Tripath.Triangle q

let find_nice ?(opts = default_options) ~want q =
  (* Nice tripaths tend to need slightly longer arms; widen the bounds. *)
  let opts = { opts with max_spine = max 3 opts.max_spine; max_arm = max 4 opts.max_arm } in
  let result =
    try search_internal ~opts ~want ~require_nice:true q with Budget_exhausted -> Not_found
  in
  match result with
  | Not_found -> None
  | Found (tripath, kind) -> (
      match Tripath.niceness tripath with
      | Ok (kind', witness) ->
          assert (kind' = kind);
          Some (tripath, witness)
      | Error _ -> None)
