(** Certain-answer solver front-end: classify the query, then dispatch to the
    algorithm the dichotomy designates.

    For PTIME queries the designated polynomial algorithm is used ([Cert_2],
    [Cert_k], or [Cert_k ∨ ¬Matching]); for coNP-complete queries an exact
    exponential solver is used (backtracking search for a falsifying repair,
    or the SAT encoding). For queries equivalent to a one-atom query the
    answer is computed directly: a one-atom query [R(C)] is certain iff some
    block consists entirely of facts matching [C]. *)

type algorithm =
  | Alg_one_atom  (** Per-block matching test for trivial queries. *)
  | Alg_cert2
  | Alg_certk of int
  | Alg_combined of int
  | Alg_exact_backtracking
  | Alg_exact_sat

val pp_algorithm : Format.formatter -> algorithm -> unit

(** [conjunction_atom q] is the single most general atom [C] equivalent to
    [q = A ∧ B] over consistent databases when [key-bar(A) = key-bar(B)]:
    a fact [a] matches [C] iff a {e single} assignment [μ] satisfies
    [μ(A) = a = μ(B)] (positions connected through the shared variables of
    the two atoms must hold equal values). [None] when no single fact can
    match (conflicting constants). *)
val conjunction_atom : Qlang.Query.t -> Qlang.Atom.t option

(** [certain_one_atom atom db] decides certainty of the one-atom query
    [∃* atom]: some block has all its facts matching [atom]. *)
val certain_one_atom : Qlang.Atom.t -> Relational.Database.t -> bool

(** [certain ?k report db] answers CERTAIN for the classified query on [db],
    returning the algorithm used. [k] bounds the fixpoint parameter of
    [Cert_k] (default 3; the paper's bound {!Cqa.Certk.paper_k} is
    astronomically larger but never needed on practical instances — see
    EXPERIMENTS.md). For coNP-complete queries [exact] selects the
    exponential solver (default [`Backtracking]). *)
val certain :
  ?k:int ->
  ?exact:[ `Backtracking | `Sat ] ->
  Dichotomy.report ->
  Relational.Database.t ->
  bool * algorithm

(** [certain_query ?opts ?k ?exact q db] classifies then solves. *)
val certain_query :
  ?opts:Tripath_search.options ->
  ?k:int ->
  ?exact:[ `Backtracking | `Sat ] ->
  Qlang.Query.t ->
  Relational.Database.t ->
  bool * algorithm
