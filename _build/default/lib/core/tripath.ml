module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database
module Query = Qlang.Query
module Solutions = Qlang.Solutions

type inner = { fa : Fact.t; fb : Fact.t }

type t = {
  query : Query.t;
  root : Fact.t;
  spine : inner list;
  center : inner;
  arm1 : inner list;
  leaf1 : Fact.t;
  arm2 : inner list;
  leaf2 : Fact.t;
}

type kind = Fork | Triangle

let pp_kind ppf = function
  | Fork -> Format.pp_print_string ppf "fork"
  | Triangle -> Format.pp_print_string ppf "triangle"

let center_facts tp =
  let e = tp.center.fa in
  let d = match tp.arm1 with b :: _ -> b.fb | [] -> tp.leaf1 in
  let f = match tp.arm2 with b :: _ -> b.fb | [] -> tp.leaf2 in
  (d, e, f)

let all_facts tp =
  let inner_facts l = List.concat_map (fun b -> [ b.fa; b.fb ]) l in
  (tp.root :: inner_facts tp.spine)
  @ [ tp.center.fa; tp.center.fb ]
  @ inner_facts tp.arm1 @ [ tp.leaf1 ] @ inner_facts tp.arm2 @ [ tp.leaf2 ]

let database tp = Database.of_facts [ tp.query.Query.schema ] (all_facts tp)
let n_blocks tp = 3 + List.length tp.spine + List.length tp.arm1 + List.length tp.arm2 + 1

let key_set (q : Query.t) fact = Fact.key_set q.Query.schema fact

let g_set q ~d ~e ~f =
  let kd = key_set q d and ke = key_set q e and kf = key_set q f in
  let sub = Value.Set.subset in
  if sub kd ke && not (sub kf ke) then kd
  else if (not (sub kd ke)) && sub kf ke then kf
  else if sub kd kf && sub kf ke then kd
  else if sub kf kd && sub kd ke then kf
  else ke

(* The parent-child solution constraints of the tree, as ordered triples
   (parent_a, child_b, directed): when [directed] is [None] the requirement
   is q{parent_a child_b}; for the two center edges the paper's branching
   notion fixes the orientation. *)
type edge = { parent_a : Fact.t; child_b : Fact.t; directed : [ `Down | `Up ] option }

let edges tp =
  let d, e, f = center_facts tp in
  (* Chain from the root down to the center: the child's b facts are the b of
     each spine block and finally the center's b. *)
  let rec chain parent_a acc = function
    | [] -> List.rev ({ parent_a; child_b = tp.center.fb; directed = None } :: acc)
    | blk :: rest ->
        chain blk.fa ({ parent_a; child_b = blk.fb; directed = None } :: acc) rest
  in
  let spine_edges = chain tp.root [] tp.spine in
  (* Arms: from the center down to each leaf. The first arm edge carries the
     branching orientation: q(d e) for arm 1 and q(e f) for arm 2. *)
  let arm_edges first_dir arm leaf =
    let rec go parent_a acc first = function
      | [] ->
          List.rev
            ({ parent_a; child_b = leaf; directed = (if first then Some first_dir else None) }
            :: acc)
      | blk :: rest ->
          go blk.fa
            ({ parent_a; child_b = blk.fb; directed = (if first then Some first_dir else None) }
            :: acc)
            false rest
    in
    go e [] true arm
  in
  ignore d;
  ignore f;
  spine_edges @ arm_edges `Up tp.arm1 tp.leaf1 @ arm_edges `Down tp.arm2 tp.leaf2

let check tp =
  let q = tp.query in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let facts = all_facts tp in
  (* Schema conformance. *)
  List.iter
    (fun fact ->
      if
        not
          (String.equal fact.Fact.rel q.Query.schema.Relational.Schema.name
          && Fact.arity fact = q.Query.schema.Relational.Schema.arity)
      then err "fact %a does not fit the query schema" Fact.pp fact)
    facts;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    (* Distinct facts. *)
    let sorted = List.sort_uniq Fact.compare facts in
    if List.length sorted <> List.length facts then
      err "tripath facts are not pairwise distinct";
    (* Internal blocks: fa ~ fb and fa <> fb. *)
    let check_inner where blk =
      if not (Fact.key_equal q.Query.schema blk.fa blk.fb) then
        err "%s block facts %a and %a are not key-equal" where Fact.pp blk.fa
          Fact.pp blk.fb
    in
    List.iter (check_inner "spine") tp.spine;
    check_inner "center" tp.center;
    List.iter (check_inner "arm") (tp.arm1 @ tp.arm2);
    (* Distinct block keys: the tree blocks are exactly the database blocks. *)
    let block_keys =
      (Fact.key q.Query.schema tp.root
      :: List.map (fun b -> Fact.key q.Query.schema b.fa) tp.spine)
      @ [ Fact.key q.Query.schema tp.center.fa ]
      @ List.map (fun b -> Fact.key q.Query.schema b.fa) tp.arm1
      @ [ Fact.key q.Query.schema tp.leaf1 ]
      @ List.map (fun b -> Fact.key q.Query.schema b.fa) tp.arm2
      @ [ Fact.key q.Query.schema tp.leaf2 ]
    in
    let distinct_keys = List.sort_uniq (List.compare Value.compare) block_keys in
    if List.length distinct_keys <> List.length block_keys then
      err "two tree blocks share a key";
    (* Solution constraints along the edges. *)
    let sol = Solutions.query_solution_pair q in
    List.iter
      (fun { parent_a; child_b; directed } ->
        match directed with
        | None ->
            if not (sol parent_a child_b || sol child_b parent_a) then
              err "missing solution q{%a %a}" Fact.pp parent_a Fact.pp child_b
        | Some `Up ->
            (* Arm-1 first edge: q(d e) with d the child fact. *)
            if not (sol child_b parent_a) then
              err "missing directed solution q(%a %a)" Fact.pp child_b Fact.pp
                parent_a
        | Some `Down ->
            (* Arm-2 first edge: q(e f) with f the child fact. *)
            if not (sol parent_a child_b) then
              err "missing directed solution q(%a %a)" Fact.pp parent_a Fact.pp
                child_b)
      (edges tp);
    (* Endpoint conditions on g(e). *)
    let d, e, f = center_facts tp in
    let g = g_set q ~d ~e ~f in
    List.iter
      (fun (name, endpoint) ->
        if Value.Set.subset g (key_set q endpoint) then
          err "g(e) is included in the key of %s %a" name Fact.pp endpoint)
      [ ("root", tp.root); ("leaf1", tp.leaf1); ("leaf2", tp.leaf2) ];
    match List.rev !errors with
    | [] ->
        let sol = Solutions.query_solution_pair q in
        Ok (if sol f d then Triangle else Fork)
    | errs -> Error errs
  end

type nice_witness = {
  x : Value.t;
  y : Value.t;
  z : Value.t;
  u : Value.t;
  v : Value.t;
  w : Value.t;
}

let unordered_pair f g = if Fact.compare f g <= 0 then (f, g) else (g, f)

module Pair_set = Set.Make (struct
  type t = Fact.t * Fact.t

  let compare (a1, b1) (a2, b2) =
    let c = Fact.compare a1 a2 in
    if c <> 0 then c else Fact.compare b1 b2
end)

let niceness tp =
  match check tp with
  | Error errs -> Error errs
  | Ok kind ->
      let q = tp.query in
      let errors = ref [] in
      let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
      let d, e, f = center_facts tp in
      let endpoints = [ tp.root; tp.leaf1; tp.leaf2 ] in
      let endpoint_keys =
        List.fold_left
          (fun acc fact -> Value.Set.union acc (key_set q fact))
          Value.Set.empty endpoints
      in
      let non_endpoint_facts =
        List.filter
          (fun fact -> not (List.exists (Fact.equal fact) endpoints))
          (all_facts tp)
      in
      (* Solution-nice: computed solutions are only the enforced ones (and
         possibly (f d) for triangles). *)
      let allowed =
        List.fold_left
          (fun acc { parent_a; child_b; _ } ->
            Pair_set.add (unordered_pair parent_a child_b) acc)
          Pair_set.empty (edges tp)
        |> Pair_set.add (unordered_pair f d)
      in
      let db = database tp in
      List.iter
        (fun (s, t) ->
          if not (Pair_set.mem (unordered_pair s t) allowed) then
            err "extra solution q(%a %a)" Fact.pp s Fact.pp t)
        (Solutions.query_pairs q db);
      (* Variable-nice + covering element: choose x, y, z. *)
      let candidates fact = Value.Set.diff (key_set q fact) endpoint_keys in
      let xc = candidates d and yc = candidates e and zc = candidates f in
      if Value.Set.is_empty xc then err "no variable-nice witness in key(d)";
      if Value.Set.is_empty yc then err "no variable-nice witness in key(e)";
      if Value.Set.is_empty zc then err "no variable-nice witness in key(f)";
      let covering =
        List.fold_left
          (fun acc fact -> Value.Set.inter acc (key_set q fact))
          (Value.Set.union xc (Value.Set.union yc zc))
          non_endpoint_facts
      in
      let witness_xyz =
        if Value.Set.is_empty covering then None
        else
          Value.Set.fold
            (fun g acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  let pick set = if Value.Set.mem g set then Some g else Value.Set.min_elt_opt set in
                  (match (pick xc, pick yc, pick zc) with
                  | Some x, Some y, Some z
                    when Value.Set.mem g (Value.Set.of_list [ x; y; z ]) ->
                      Some (x, y, z)
                  | _, _, _ -> None))
            covering None
      in
      if witness_xyz = None && !errors = [] then
        err "no element of key(d)/key(e)/key(f) covers all non-endpoint keys";
      (* Unique endpoint elements. *)
      let unique_for endpoint =
        let others =
          List.filter (fun fact -> not (Fact.equal fact endpoint)) (all_facts tp)
        in
        let other_keys =
          List.fold_left
            (fun acc fact -> Value.Set.union acc (key_set q fact))
            Value.Set.empty others
        in
        Value.Set.min_elt_opt (Value.Set.diff (key_set q endpoint) other_keys)
      in
      let u = unique_for tp.root and v = unique_for tp.leaf1 and w = unique_for tp.leaf2 in
      if u = None then err "root key has no element unique to it";
      if v = None then err "leaf1 key has no element unique to it";
      if w = None then err "leaf2 key has no element unique to it";
      (match (List.rev !errors, witness_xyz, u, v, w) with
      | [], Some (x, y, z), Some u, Some v, Some w ->
          Ok (kind, { x; y; z; u; v; w })
      | errs, _, _, _, _ ->
          Error (if errs = [] then [ "niceness check failed" ] else errs))

let pp ppf tp =
  let pp_fact = Fact.pp_with_key tp.query.Query.schema in
  let pp_inner ppf blk =
    Format.fprintf ppf "{a=%a; b=%a}" pp_fact blk.fa pp_fact blk.fb
  in
  Format.fprintf ppf "@[<v>root: %a@," pp_fact tp.root;
  List.iter (Format.fprintf ppf "spine: %a@," pp_inner) tp.spine;
  Format.fprintf ppf "center: %a@," pp_inner tp.center;
  List.iter (Format.fprintf ppf "arm1: %a@," pp_inner) tp.arm1;
  Format.fprintf ppf "leaf1: %a@," pp_fact tp.leaf1;
  List.iter (Format.fprintf ppf "arm2: %a@," pp_inner) tp.arm2;
  Format.fprintf ppf "leaf2: %a@]" pp_fact tp.leaf2
