module Query = Qlang.Query
module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database
module Solutions = Qlang.Solutions

type options = { max_blocks : int; max_candidates : int }

let default_options = { max_blocks = 12; max_candidates = 200_000 }

exception Found_exn of Tripath.t * Tripath.kind
exception Budget_exhausted

module Key_set = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let find ?(opts = default_options) ?want (q : Query.t) db =
  let schema = q.Query.schema in
  let key f = Fact.key schema f in
  let facts = Array.of_list (Database.facts db) in
  let n = Array.length facts in
  (* Directed and symmetric solution adjacency, by fact index. *)
  let index =
    let m = ref Fact.Map.empty in
    Array.iteri (fun i f -> m := Fact.Map.add f i !m) facts;
    !m
  in
  let out_edges = Array.make (max n 1) [] in
  let in_edges = Array.make (max n 1) [] in
  let sym_edges = Array.make (max n 1) [] in
  List.iter
    (fun (f, g) ->
      let i = Fact.Map.find f index and j = Fact.Map.find g index in
      if i <> j then begin
        out_edges.(i) <- j :: out_edges.(i);
        in_edges.(j) <- i :: in_edges.(j);
        sym_edges.(i) <- j :: sym_edges.(i);
        sym_edges.(j) <- i :: sym_edges.(j)
      end)
    (Solutions.query_pairs q db);
  Array.iteri (fun i l -> sym_edges.(i) <- List.sort_uniq Int.compare l) sym_edges;
  let budget = ref opts.max_candidates in
  let exhausted = ref false in
  let spend () =
    decr budget;
    if !budget <= 0 then raise Budget_exhausted
  in
  let siblings i =
    Database.siblings db facts.(i)
    |> List.filter_map (fun f -> Fact.Map.find_opt f index)
  in
  let try_candidate candidate =
    spend ();
    match Tripath.check candidate with
    | Error _ -> ()
    | Ok kind ->
        let kind_ok = match want with None -> true | Some k -> k = kind in
        if kind_ok then raise (Found_exn (candidate, kind))
  in
  (* Grow one arm downward from the fact [cur_b] (already placed as the b of
     the current block). *)
  let rec grow_arm g_set cur_b used blocks n_blocks on_done =
    spend ();
    if not (Value.Set.subset g_set (Fact.key_set schema facts.(cur_b)))
    then on_done used (List.rev blocks) cur_b n_blocks;
    if n_blocks < opts.max_blocks then
      List.iter
        (fun sib ->
          let block = { Tripath.fa = facts.(sib); fb = facts.(cur_b) } in
          List.iter
            (fun child ->
              let child_key = key facts.(child) in
              if not (Key_set.mem child_key used) then
                grow_arm g_set child
                  (Key_set.add child_key used)
                  (block :: blocks) (n_blocks + 1) on_done)
            sym_edges.(sib))
        (siblings cur_b)
  in
  (* Grow the spine upward from [cur_b] (the b-fact of the current top
     block). *)
  let rec grow_up g_set cur_b used blocks n_blocks on_done =
    spend ();
    List.iter
      (fun parent ->
        let parent_key = key facts.(parent) in
        if not (Key_set.mem parent_key used) then begin
          let used' = Key_set.add parent_key used in
          (* Stop: [parent] is the root. *)
          if not (Value.Set.subset g_set (Fact.key_set schema facts.(parent)))
          then on_done used' facts.(parent) blocks (n_blocks + 1);
          (* Continue: [parent] gets a block-mate and the spine goes on. *)
          if n_blocks + 1 < opts.max_blocks then
            List.iter
              (fun sib ->
                let block = { Tripath.fa = facts.(parent); fb = facts.(sib) } in
                grow_up g_set sib used' (block :: blocks) (n_blocks + 1) on_done)
              (siblings parent)
        end)
      sym_edges.(cur_b)
  in
  let run_center d e f =
    let dk = key facts.(d) and ek = key facts.(e) and fk = key facts.(f) in
    if
      (not (List.equal Value.equal dk ek))
      && (not (List.equal Value.equal dk fk))
      && not (List.equal Value.equal ek fk)
    then begin
      let g_set = Tripath.g_set q ~d:facts.(d) ~e:facts.(e) ~f:facts.(f) in
      let used = Key_set.of_list [ dk; ek; fk ] in
      List.iter
        (fun e_sib ->
          let center = { Tripath.fa = facts.(e); fb = facts.(e_sib) } in
          grow_up g_set e_sib used [] 3 (fun used root spine n_blocks ->
              grow_arm g_set d used [] n_blocks (fun used arm1 leaf1 n_blocks1 ->
                  grow_arm g_set f used [] n_blocks1 (fun _used arm2 leaf2 _nb ->
                      try_candidate
                        {
                          Tripath.query = q;
                          root;
                          spine;
                          center;
                          arm1;
                          leaf1 = facts.(leaf1);
                          arm2;
                          leaf2 = facts.(leaf2);
                        }))))
        (siblings e)
    end
  in
  match
    for e = 0 to n - 1 do
      List.iter
        (fun d -> List.iter (fun f -> if d <> f then run_center d e f) out_edges.(e))
        in_edges.(e)
    done
  with
  | () -> (None, if !exhausted then `Exhausted else `Complete)
  | exception Found_exn (tp, kind) -> (Some (tp, kind), `Complete)
  | exception Budget_exhausted ->
      exhausted := true;
      (None, `Exhausted)

let contains_tripath ?opts q db = Option.is_some (fst (find ?opts q db))
