(** Concrete tripath containment: does a {e database} [D] contain a tripath
    of [q] (a sub-database [Θ ⊆ D] meeting the Section 7 definition)?

    Propositions 10 and 19 are stated at this level: the greedy fixpoint is
    exact on databases containing no tripath, and the Proposition 19
    partition separates components without tripaths from clique components.
    The search enumerates branching centers [(d, e, f)] from the directed
    solution pairs of [D], then grows the spine and the two arms by
    depth-first search over the solution edges, drawing block-mates from
    [D]'s blocks and keeping the tree blocks key-disjoint. Every result is
    re-verified by {!Tripath.check}. *)

type options = {
  max_blocks : int;  (** Total block budget per candidate tree (default 12). *)
  max_candidates : int;  (** Global work budget (default 200_000). *)
}

val default_options : options

(** [find ?opts ?want q db] returns a verified tripath contained in [db], of
    the requested kind if [want] is given. [None] means no tripath within
    the search bounds (exact when the budget was not exhausted, which the
    second component reports: [`Exhausted] or [`Complete]). *)
val find :
  ?opts:options ->
  ?want:Tripath.kind ->
  Qlang.Query.t ->
  Relational.Database.t ->
  (Tripath.t * Tripath.kind) option * [ `Complete | `Exhausted ]

(** [contains_tripath ?opts q db] is [find] ignoring the witness. *)
val contains_tripath : ?opts:options -> Qlang.Query.t -> Relational.Database.t -> bool
