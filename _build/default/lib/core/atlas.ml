module Query = Qlang.Query
module Atom = Qlang.Atom
module Term = Qlang.Term
module Schema = Relational.Schema

(* Restricted growth strings of length n: s.(0) = 0 and
   s.(i) <= 1 + max(s.(0..i-1)). Each string is a canonical variable-naming
   pattern; they enumerate set partitions of the positions. *)
let growth_strings n =
  let rec go prefix maxv i acc =
    if i = n then List.rev prefix :: acc
    else
      let acc = ref acc in
      for v = 0 to maxv + 1 do
        acc := go (v :: prefix) (max maxv v) (i + 1) !acc
      done;
      !acc
  in
  if n = 0 then [ [] ] else go [] (-1) 0 []

(* Canonical renaming of an arbitrary index sequence: first occurrence
   order. *)
let canonicalize seq =
  let table = Hashtbl.create 8 in
  List.map
    (fun v ->
      match Hashtbl.find_opt table v with
      | Some c -> c
      | None ->
          let c = Hashtbl.length table in
          Hashtbl.add table v c;
          c)
    seq

let var_name i = Printf.sprintf "v%d" i

let query_of_string ~arity ~key_len seq =
  let schema = Schema.make ~name:"R" ~arity ~key_len in
  let terms = List.map (fun i -> Term.var (var_name i)) seq in
  let rec split i acc = function
    | rest when i = arity -> (List.rev acc, rest)
    | t :: rest -> split (i + 1) (t :: acc) rest
    | [] -> invalid_arg "Atlas: sequence too short"
  in
  let args_a, args_b = split 0 [] terms in
  Query.make_exn schema (Atom.make "R" args_a) (Atom.make "R" args_b)

let enumerate ~arity ~key_len =
  if arity < 1 || key_len < 0 || key_len > arity then
    invalid_arg "Atlas.enumerate: invalid signature";
  growth_strings (2 * arity)
  |> List.filter_map (fun seq ->
         (* Break the AB ~ BA symmetry: keep the representative whose
            canonical form is lexicographically minimal. *)
         let rec split i acc = function
           | rest when i = arity -> (List.rev acc, rest)
           | x :: rest -> split (i + 1) (x :: acc) rest
           | [] -> assert false
         in
         let a, b = split 0 [] seq in
         let swapped = canonicalize (b @ a) in
         if List.compare Int.compare seq swapped <= 0 then
           Some (query_of_string ~arity ~key_len seq)
         else None)

type entry = { query : Query.t; report : Dichotomy.report }

type summary = {
  total : int;
  trivial : int;
  cert2 : int;
  no_tripath : int;
  triangle : int;
  fork : int;
  sjf_hard : int;
}

let bulk_options =
  {
    Tripath_search.max_spine = 2;
    max_arm = 2;
    max_merges = 1;
    max_candidates = 50_000;
  }

let classify_all ?(opts = bulk_options) queries =
  List.map (fun query -> { query; report = Dichotomy.classify ~opts query }) queries

let summarize entries =
  List.fold_left
    (fun acc e ->
      let acc = { acc with total = acc.total + 1 } in
      match e.report.Dichotomy.verdict with
      | Dichotomy.Ptime (Dichotomy.Trivial _) -> { acc with trivial = acc.trivial + 1 }
      | Dichotomy.Ptime Dichotomy.Cert2 -> { acc with cert2 = acc.cert2 + 1 }
      | Dichotomy.Ptime Dichotomy.Certk_no_tripath ->
          { acc with no_tripath = acc.no_tripath + 1 }
      | Dichotomy.Ptime (Dichotomy.Combined_triangle _) ->
          { acc with triangle = acc.triangle + 1 }
      | Dichotomy.Conp_complete (Dichotomy.Fork_tripath _) -> { acc with fork = acc.fork + 1 }
      | Dichotomy.Conp_complete Dichotomy.Sjf_hard -> { acc with sjf_hard = acc.sjf_hard + 1 })
    { total = 0; trivial = 0; cert2 = 0; no_tripath = 0; triangle = 0; fork = 0; sjf_hard = 0 }
    entries

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>total queries:          %4d@,PTIME trivial:          %4d@,PTIME Cert_2 (Thm 4):   %4d@,PTIME no tripath (9):   %4d@,PTIME triangle (18):    %4d@,coNP fork (Thm 12):     %4d@,coNP sjf (Thm 3):       %4d@]"
    s.total s.trivial s.cert2 s.no_tripath s.triangle s.fork s.sjf_hard
