(** Exhaustive classification atlas of small queries.

    The paper's classification is effective; this module makes that concrete
    by enumerating {e every} two-atom self-join query over a given signature
    [\[arity, key_len\]] (variables only, up to variable renaming and up to
    the [AB ~ BA] symmetry) and classifying each one. The result is the
    complexity landscape of a whole query class — e.g. all 2-ary queries
    with unary keys — rather than a hand-picked catalogue.

    Enumeration uses restricted-growth strings: a query is a length-[2k]
    sequence of variable indices in canonical first-occurrence order; the
    [AB]/[BA] symmetry is broken by keeping the lexicographically smaller of
    the two canonical forms. *)

(** [enumerate ~arity ~key_len] lists all canonical queries of the
    signature. The count grows like the Bell number of [2 * arity]; guard
    yourself for arity above 4.
    @raise Invalid_argument on invalid signatures. *)
val enumerate : arity:int -> key_len:int -> Qlang.Query.t list

type entry = { query : Qlang.Query.t; report : Dichotomy.report }

(** Aggregated class sizes of an atlas. *)
type summary = {
  total : int;
  trivial : int;
  cert2 : int;  (** PTIME via Theorem 4. *)
  no_tripath : int;  (** PTIME via Theorem 9. *)
  triangle : int;  (** PTIME via Theorem 18. *)
  fork : int;  (** coNP-complete via Theorem 12. *)
  sjf_hard : int;  (** coNP-complete via Theorem 3. *)
}

(** [classify_all ?opts queries] classifies every query (the tripath-search
    options default to a reduced budget suitable for bulk runs — see
    {!bulk_options}). *)
val classify_all : ?opts:Tripath_search.options -> Qlang.Query.t list -> entry list

(** Reduced search bounds used for bulk classification: spine/arm depth 2,
    one extra identification. Within these bounds the atlas verdicts agree
    with the default-bound classifier on the whole catalogue (tested). *)
val bulk_options : Tripath_search.options

val summarize : entry list -> summary
val pp_summary : Format.formatter -> summary -> unit
