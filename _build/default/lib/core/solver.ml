module Query = Qlang.Query
module Atom = Qlang.Atom
module Term = Qlang.Term
module Database = Relational.Database

type algorithm =
  | Alg_one_atom
  | Alg_cert2
  | Alg_certk of int
  | Alg_combined of int
  | Alg_exact_backtracking
  | Alg_exact_sat

let pp_algorithm ppf = function
  | Alg_one_atom -> Format.pp_print_string ppf "one-atom block test"
  | Alg_cert2 -> Format.pp_print_string ppf "Cert_2"
  | Alg_certk k -> Format.fprintf ppf "Cert_%d" k
  | Alg_combined k -> Format.fprintf ppf "Cert_%d \u{2228} \u{00AC}Matching" k
  | Alg_exact_backtracking -> Format.pp_print_string ppf "exact (backtracking)"
  | Alg_exact_sat -> Format.pp_print_string ppf "exact (SAT)"

(* A fact [a] satisfies [∃μ. μ(A) = a = μ(B)] iff its positions respect the
   equalities forced by ONE assignment matching both atoms: [a_i = μ(A[i])]
   and [a_i = μ(B[i])], so two positions must be equal whenever they are
   connected through shared variables of either atom (e.g. in
   [R(x | y z) ∧ R(x | z y)], positions 1 and 2 are linked through [y] and
   [z] jointly). Union-find over positions, linking every position to a
   representative position of each variable it carries in A or in B;
   constants constrain their class. *)
let conjunction_atom (q : Query.t) =
  let arity = Atom.arity q.Query.a in
  let parent = Array.init arity (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let var_position = Hashtbl.create 8 in
  let link_var i t =
    match t with
    | Term.Cst _ -> ()
    | Term.Var v -> (
        match Hashtbl.find_opt var_position v with
        | None -> Hashtbl.add var_position v i
        | Some j -> union i j)
  in
  for i = 0 to arity - 1 do
    link_var i (Atom.nth q.Query.a i);
    link_var i (Atom.nth q.Query.b i)
  done;
  (* Collect the constant constraint of each class. *)
  let exception Conflict in
  try
    let constants = Hashtbl.create 8 in
    let record i t =
      match t with
      | Term.Var _ -> ()
      | Term.Cst v -> (
          let r = find i in
          match Hashtbl.find_opt constants r with
          | None -> Hashtbl.add constants r v
          | Some v' -> if not (Relational.Value.equal v v') then raise Conflict)
    in
    for i = 0 to arity - 1 do
      record i (Atom.nth q.Query.a i);
      record i (Atom.nth q.Query.b i)
    done;
    let args =
      Array.init arity (fun i ->
          let r = find i in
          match Hashtbl.find_opt constants r with
          | Some v -> Term.cst v
          | None -> Term.var (Printf.sprintf "c%d" r))
    in
    Some (Atom.of_array q.Query.a.Atom.rel args)
  with Conflict -> None

let matches atom fact =
  Option.is_some (Qlang.Unify.match_fact Qlang.Subst.empty atom fact)

let certain_one_atom atom db =
  List.exists
    (fun (block : Relational.Block.t) ->
      List.for_all (matches atom) block.Relational.Block.facts)
    (Database.blocks db)

let certain_trivial (q : Query.t) triviality db =
  match triviality with
  | Query.Hom_a_to_b -> certain_one_atom q.Query.b db
  | Query.Hom_b_to_a -> certain_one_atom q.Query.a db
  | Query.Equal_key_tuples -> (
      match conjunction_atom q with
      | None -> false (* no single fact can match both atoms *)
      | Some c -> certain_one_atom c db)

let certain ?(k = 3) ?(exact = `Backtracking) (report : Dichotomy.report) db =
  let q = report.Dichotomy.query in
  match report.Dichotomy.verdict with
  | Dichotomy.Ptime (Dichotomy.Trivial t) -> (certain_trivial q t db, Alg_one_atom)
  | Dichotomy.Ptime Dichotomy.Cert2 ->
      (Cqa.Certk.certain_query ~k:2 q db, Alg_cert2)
  | Dichotomy.Ptime Dichotomy.Certk_no_tripath ->
      (Cqa.Certk.certain_query ~k q db, Alg_certk k)
  | Dichotomy.Ptime (Dichotomy.Combined_triangle _) ->
      (Cqa.Combined.certain_query ~k q db, Alg_combined k)
  | Dichotomy.Conp_complete _ -> (
      let g = Qlang.Solution_graph.of_query q db in
      match exact with
      | `Backtracking -> (Cqa.Exact.certain g, Alg_exact_backtracking)
      | `Sat -> (Cqa.Satreduce.certain g, Alg_exact_sat))

let certain_query ?opts ?k ?exact q db =
  certain ?k ?exact (Dichotomy.classify ?opts q) db
