lib/core/syntactic.mli: Qlang Relational
