lib/core/solver.mli: Dichotomy Format Qlang Relational Tripath_search
