lib/core/shell.mli:
