lib/core/tripath_search.ml: Array Hashtbl List Qlang Relational String Tripath
