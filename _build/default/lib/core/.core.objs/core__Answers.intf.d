lib/core/answers.mli: Qlang Relational
