lib/core/shell.ml: Answers Cqa Dichotomy Format In_channel List Qlang Random Relational Session Solver String
