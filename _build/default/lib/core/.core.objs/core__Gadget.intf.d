lib/core/gadget.mli: Qlang Relational Satsolver Tripath Tripath_search
