lib/core/atlas.ml: Dichotomy Format Hashtbl Int List Printf Qlang Relational Tripath_search
