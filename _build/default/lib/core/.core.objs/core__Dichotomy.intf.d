lib/core/dichotomy.mli: Format Qlang Tripath Tripath_search
