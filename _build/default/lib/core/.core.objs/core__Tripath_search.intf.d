lib/core/tripath_search.mli: Qlang Tripath
