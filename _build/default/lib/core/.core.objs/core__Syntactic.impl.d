lib/core/syntactic.ml: List Qlang Relational
