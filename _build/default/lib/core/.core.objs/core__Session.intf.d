lib/core/session.mli: Cqa Dichotomy Qlang Random Relational Solver Tripath_search
