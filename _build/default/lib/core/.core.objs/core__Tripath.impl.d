lib/core/tripath.ml: Format List Qlang Relational Set String
