lib/core/tripath.mli: Format Qlang Relational
