lib/core/answers.ml: Array Dichotomy Hashtbl List Printf Qlang Relational Solver String
