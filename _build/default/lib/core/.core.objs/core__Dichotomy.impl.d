lib/core/dichotomy.ml: Format Qlang String Syntactic Tripath Tripath_search
