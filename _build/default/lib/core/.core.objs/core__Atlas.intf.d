lib/core/atlas.mli: Dichotomy Format Qlang Tripath_search
