lib/core/gadget.ml: Array Cqa Format Hashtbl Int List Option Printf Qlang Relational Satsolver String Tripath Tripath_search
