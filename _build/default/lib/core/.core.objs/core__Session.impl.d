lib/core/session.ml: Array Cqa Dichotomy Hashtbl Lazy List Option Qlang Relational Solver
