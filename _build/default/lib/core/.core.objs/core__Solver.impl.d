lib/core/solver.ml: Array Cqa Dichotomy Format Hashtbl List Option Printf Qlang Relational
