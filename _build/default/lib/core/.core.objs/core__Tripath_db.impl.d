lib/core/tripath_db.ml: Array Int List Option Qlang Relational Set Tripath
