lib/core/tripath_db.mli: Qlang Relational Tripath
