(** Tripaths (Section 7): the witness databases that pinpoint the complexity
    of 2way-determined queries.

    A tripath of [q] is a database whose blocks form a tree with one root
    block (a single fact [a(B0)]), one branching block, and exactly two leaf
    blocks (a single fact each); every other block has exactly two facts
    [a(B)], [b(B)]. Whenever [B = s(B')] (parent), [q{a(B) b(B')}] holds. The
    branching block's fact [e = a(B)] is {e branching} with [d = b(B')] and
    [f = b(B'')] for its two children: [q(de)] and [q(ef)]. Finally the
    element set [g(e)] (defined from the key inclusions of [d, e, f]) must
    not be included in the key of the root fact nor of either leaf fact.

    If moreover [q(fd)] holds the tripath is a {e triangle}-tripath,
    otherwise a {e fork}-tripath. Existence of a fork-tripath makes
    CERTAIN(q) coNP-complete (Theorem 12); absence of any tripath makes
    [Cert_k] exact (Theorem 9); triangle-only queries need the combined
    algorithm (Theorems 14, 18). *)

type inner = {
  fa : Relational.Fact.t;  (** The fact [a(B)] of an internal block. *)
  fb : Relational.Fact.t;  (** The fact [b(B)] of an internal block. *)
}

(** A candidate tripath, presented by its tree decomposition. [arm1] leads to
    the child holding [d] (so [d] is [fb] of the first block of [arm1], or
    [leaf1] itself when [arm1] is empty); symmetrically [arm2] leads to [f]. *)
type t = {
  query : Qlang.Query.t;
  root : Relational.Fact.t;  (** [a(B0) = u0]. *)
  spine : inner list;  (** Blocks strictly between root and center, top-down. *)
  center : inner;  (** The branching block: [fa = e]. *)
  arm1 : inner list;  (** Blocks strictly between center and leaf 1, top-down. *)
  leaf1 : Relational.Fact.t;  (** [b(B1) = u1]. *)
  arm2 : inner list;
  leaf2 : Relational.Fact.t;  (** [b(B2) = u2]. *)
}

type kind = Fork | Triangle

val pp_kind : Format.formatter -> kind -> unit

(** The branching triple [(d, e, f)] — the {e center} of the tripath. *)
val center_facts : t -> Relational.Fact.t * Relational.Fact.t * Relational.Fact.t

(** All facts of the tripath, as a database over the query's schema. *)
val database : t -> Relational.Database.t

(** Number of blocks. *)
val n_blocks : t -> int

(** [g_set q ~d ~e ~f] is the element set [g(e)] for a branching triple,
    following the five-case definition of Section 7. *)
val g_set :
  Qlang.Query.t ->
  d:Relational.Fact.t ->
  e:Relational.Fact.t ->
  f:Relational.Fact.t ->
  Relational.Value.Set.t

(** [check tp] verifies every condition of the tripath definition and
    returns the tripath's kind, or the list of violated conditions. *)
val check : t -> (kind, string list) result

(** Witness elements of a {e nice} tripath (Section 7, used by the gadget of
    Theorem 12): [x ∈ key(d)], [y ∈ key(e)], [z ∈ key(f)] avoid all endpoint
    keys and at least one of them occurs in the key of every non-endpoint
    fact; [u], [v], [w] occur respectively in the keys of [u0], [u1], [u2]
    and nowhere else. *)
type nice_witness = {
  x : Relational.Value.t;
  y : Relational.Value.t;
  z : Relational.Value.t;
  u : Relational.Value.t;
  v : Relational.Value.t;
  w : Relational.Value.t;
}

(** [niceness tp] checks, on top of {!check}, the four niceness conditions:
    variable-nice, solution-nice, covering element, and unique endpoint
    elements. Returns a witness on success. *)
val niceness : t -> (kind * nice_witness, string list) result

val pp : Format.formatter -> t -> unit
