(** The coNP-hardness gadget of Theorem 12 (Figure 2): compiling a 3-SAT
    formula [φ] — every variable occurring at most three times, at least once
    per polarity, clauses of two or three distinct variables — into a
    database [D(φ)] such that [φ] is satisfiable iff [q] is {e not} certain
    for [D(φ)].

    The construction instantiates a {e nice fork-tripath} [Θ] of [q] once per
    (variable, clause) incidence: the nice witness elements [x, y, z] are
    renamed per copy (keeping the copies' interiors disjoint), the root
    element [u] becomes the clause identifier (so the roots of all literals
    of a clause merge into one {e clause block}), and the leaf elements
    [v, w] become shared pair identifiers that merge the leaves of the copies
    of the same variable across its clauses. Singleton blocks are padded with
    fresh facts forming no solution. Picking the root fact of [Θ_{l,C}] in
    the clause block of [C] reads as "literal [l] satisfies [C]"; the tripath
    chains propagate that choice to the shared leaves, where contradictory
    assignments of a variable force a solution. *)

type t = private {
  query : Qlang.Query.t;
  tripath : Tripath.t;  (** A nice fork-tripath of the query. *)
  witness : Tripath.nice_witness;
}

(** [of_tripath tp] packages a tripath after re-verifying that it is a nice
    fork-tripath. *)
val of_tripath : Tripath.t -> (t, string) result

(** [create q] searches for a nice fork-tripath of [q] (Proposition 8
    guarantees one whenever [q] admits any fork-tripath). *)
val create : ?opts:Tripath_search.options -> Qlang.Query.t -> (t, string) result

(** [database g φ] builds [D(φ)].
    @raise Invalid_argument if [φ] is not in gadget shape
    (see {!Satsolver.Threesat.in_gadget_shape}) or if padding-fact
    construction fails (which would indicate a non-nice tripath). *)
val database : t -> Satsolver.Cnf.t -> Relational.Database.t

(** [certain g φ] decides CERTAIN(q) on [D(φ)] with the exact solver —
    by Lemma 13 this is the negation of satisfiability of [φ]. *)
val certain : t -> Satsolver.Cnf.t -> bool
