(** Seeded random database generation.

    Databases are generated over a query's schema with a small value domain,
    so key collisions (blocks) and query solutions arise naturally. The
    generators are deterministic in the supplied [Random.State.t], making
    every experiment reproducible. *)

(** [random rng schema ~n_facts ~domain] draws [n_facts] facts with values
    uniform in a domain of [domain] elements. Duplicate facts collapse, so
    the result may be slightly smaller. *)
val random :
  Random.State.t ->
  Relational.Schema.t ->
  n_facts:int ->
  domain:int ->
  Relational.Database.t

(** [random_for_query rng q ~n_facts ~domain] additionally plants matches of
    the query's atoms: roughly half the facts are images of atom [A] or [B]
    under random assignments, so solution pairs are likely. *)
val random_for_query :
  Random.State.t ->
  Qlang.Query.t ->
  n_facts:int ->
  domain:int ->
  Relational.Database.t

(** [random_sjf rng s ~n_facts ~domain] draws a two-relation database for
    the self-join-free variant of a query, planting atom images as in
    {!random_for_query}. *)
val random_sjf :
  Random.State.t ->
  Qlang.Sjf.t ->
  n_facts:int ->
  domain:int ->
  Relational.Database.t

(** [hard_instance g phi] — re-exported gadget construction is in
    {!Core.Gadget}; this helper builds a random gadget-shaped formula and its
    database in one step, returning both. [None] if the random formula
    simplifies away. *)
val hard_instance :
  Random.State.t ->
  Core.Gadget.t ->
  n_vars:int ->
  n_clauses:int ->
  (Satsolver.Cnf.t * Relational.Database.t) option
