module Query = Qlang.Query
module Atom = Qlang.Atom
module Term = Qlang.Term
module Schema = Relational.Schema

let random rng ~arity ~key_len ~n_vars =
  if n_vars < 1 then invalid_arg "Randquery.random: need at least one variable";
  let schema = Schema.make ~name:"R" ~arity ~key_len in
  let atom () =
    Atom.make "R"
      (List.init arity (fun _ ->
           Term.var (Printf.sprintf "v%d" (Random.State.int rng n_vars))))
  in
  Query.make_exn schema (atom ()) (atom ())

let random_nontrivial rng ~arity ~key_len ~n_vars ~attempts =
  let rec go n =
    if n = 0 then None
    else
      let q = random rng ~arity ~key_len ~n_vars in
      if Query.triviality q = None then Some q else go (n - 1)
  in
  go attempts
