module Query = Qlang.Query
module Value = Relational.Value
module Fact = Relational.Fact

type expected =
  | Exp_trivial
  | Exp_conp_sjf
  | Exp_ptime_cert2
  | Exp_ptime_no_tripath
  | Exp_conp_fork
  | Exp_ptime_triangle

let pp_expected ppf e =
  Format.pp_print_string ppf
    (match e with
    | Exp_trivial -> "PTIME (trivial)"
    | Exp_conp_sjf -> "coNP-complete (Thm 3)"
    | Exp_ptime_cert2 -> "PTIME (Thm 4, Cert_2)"
    | Exp_ptime_no_tripath -> "PTIME (Thm 9, no tripath)"
    | Exp_conp_fork -> "coNP-complete (Thm 12, fork-tripath)"
    | Exp_ptime_triangle -> "PTIME (Thm 18, triangle only)")

type entry = {
  name : string;
  description : string;
  query : Query.t;
  expected : expected;
}

let q = Qlang.Parse.query_exn
let q1 = q "R(x u | x v) R(v y | u y)"
let q2 = q "R(x u | x y) R(u y | x z)"
let q3 = q "R(x | y) R(y | z)"
let q4 = q "R(x x | y) R(x y | y)"
let q5 = q "R(x | y x) R(y | x u)"
let q6 = q "R(x | y z) R(z | x y)"

let q7 =
  q
    "R(x1 x2 x3 | y1 y1 y2 y3 z1 z2 z3 z4 z4 z4 z4) R(x3 x1 x2 | y3 y1 y1 y2 \
     z2 z3 z4 z1 z2 z3 z4)"

let all =
  [
    {
      name = "q1";
      description = "Theorem 3 example: shared variables outside both keys";
      query = q1;
      expected = Exp_conp_sjf;
    };
    {
      name = "q2";
      description = "fork-tripath example (Figures 1b/1c); sjf(q2) is PTIME";
      query = q2;
      expected = Exp_conp_fork;
    };
    {
      name = "q3";
      description = "path-shaped query, shared variable is key(B)";
      query = q3;
      expected = Exp_ptime_cert2;
    };
    {
      name = "q4";
      description = "key(A) included in key(B)";
      query = q4;
      expected = Exp_ptime_cert2;
    };
    {
      name = "q5";
      description = "2way-determined with no tripath";
      query = q5;
      expected = Exp_ptime_no_tripath;
    };
    {
      name = "q6";
      description = "clique-query; triangle-tripaths only; Cert_k alone fails";
      query = q6;
      expected = Exp_ptime_triangle;
    };
    {
      name = "q7";
      description =
        "arity-14 example as transcribed (equal key variable sets, so \
         Theorem 4 applies; see the transcription caveat)";
      query = q7;
      expected = Exp_ptime_cert2;
    };
    (* Additional coverage beyond the paper's numbered examples. *)
    {
      name = "swap";
      description = "mutual references R(x|y) R(y|x): 2way-determined, no tripath";
      query = q "R(x | y) R(y | x)";
      expected = Exp_ptime_no_tripath;
    };
    {
      name = "triv-hom";
      description = "homomorphic atoms: q is equivalent to one atom";
      query = q "R(x | y) R(u | v)";
      expected = Exp_trivial;
    };
    {
      name = "triv-key";
      description = "equal key tuples: equivalent to a one-atom query";
      query = q "R(x y | x z) R(x y | z y)";
      expected = Exp_trivial;
    };
    {
      name = "sjf-hard-2";
      description = "another Theorem 3 query: key variables escape the other atom";
      query = q "R(x | y u) R(y | u u)";
      expected = Exp_conp_sjf;
    };
    {
      name = "cert2-shared-key";
      description = "all shared variables inside key(B)";
      query = q "R(x y | u x) R(u y | v v)";
      expected = Exp_ptime_cert2;
    };
    {
      name = "triangle-2";
      description = "a 3-cycle variant of q6 with swapped non-key positions";
      query = q "R(x | z y) R(z | y x)";
      expected = Exp_ptime_triangle;
    };
    {
      name = "fork-2";
      description = "a fork-tripath query with arity 5";
      query = q "R(x u | x y z) R(u y | x z z)";
      expected = Exp_conp_fork;
    };
    (* Discovered by the exhaustive [4,1] atlas (experiment E12): of its
       2152 canonical queries, 12 are triangle-only and 66 fork-hard. *)
    {
      name = "triangle-41";
      description = "a triangle-only query of signature [4,1], found by the atlas";
      query = q "R(x | y z u) R(z | y u x)";
      expected = Exp_ptime_triangle;
    };
    {
      name = "fork-41";
      description = "a fork-tripath query of signature [4,1], found by the atlas";
      query = q "R(x | y z u) R(z | v w x)";
      expected = Exp_conp_fork;
    };
  ]

let find name = List.find (fun e -> String.equal e.name name) all

(* The nice fork-tripath for q2 discovered by Tripath_search.find_nice;
   re-verified by the test suite (Tripath.niceness must accept it). *)
let q2_nice_fork_tripath =
  let v i = Value.tag "\u{03B8}" (Value.int i) in
  let fact a b c d = Fact.make "R" [ v a; v b; v c; v d ] in
  let inner (a1, a2, a3, a4) (b1, b2, b3, b4) =
    { Core.Tripath.fa = fact a1 a2 a3 a4; fb = fact b1 b2 b3 b4 }
  in
  {
    Core.Tripath.query = q2;
    root = fact 17 15 17 2;
    spine = [ inner (15, 2, 15, 4) (15, 2, 17, 18) ];
    center = inner (2, 4, 2, 2) (2, 4, 15, 16);
    arm1 =
      [
        inner (2, 2, 2, 10) (2, 2, 2, 4);
        inner (2, 10, 12, 13) (2, 10, 2, 11);
        inner (12, 2, 12, 7) (12, 2, 12, 10);
        inner (2, 7, 2, 8) (2, 7, 12, 14);
      ];
    leaf1 = fact 7 8 2 9;
    arm2 =
      [ inner (4, 2, 4, 0) (4, 2, 2, 5); inner (2, 0, 2, 1) (2, 0, 4, 6) ];
    leaf2 = fact 0 1 2 3;
  }
