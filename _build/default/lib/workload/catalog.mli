(** The paper's query catalogue (q1 — q7) plus further examples of every
    dichotomy class, with their expected classifications.

    The expected classes below restate the paper's analysis:
    - [q1 = R(xu | xv) ∧ R(vy | uy)] — coNP-complete by Theorem 3.
    - [q2 = R(xu | xy) ∧ R(uy | xz)] — 2way-determined, admits a
      fork-tripath: coNP-complete by Theorem 12 (while [sjf(q2)] is in
      PTIME — the converse of Proposition 2 fails).
    - [q3 = R(x | y) ∧ R(y | z)] — PTIME by Theorem 4 (shared variable in
      [key(B)]).
    - [q4 = R(xx | y) ∧ R(xy | y)] — PTIME by Theorem 4
      ([key(A) ⊆ key(B)]).
    - [q5 = R(x | yx) ∧ R(y | xu)] — 2way-determined, no tripath: PTIME by
      Theorem 9.
    - [q6 = R(x | yz) ∧ R(z | xy)] — clique-query; admits triangle-tripaths
      but no fork-tripath: PTIME by Theorems 17/18, and [Cert_k] alone fails
      (Theorem 14).
    - [q7] — the paper's arity-14 example. {b Transcription caveat}: in the
      available text the two key tuples of [q7] use the same variable set
      ({x1, x2, x3}), making [key(A) = key(B)] and the query {e not}
      2way-determined (it falls to Theorem 4), while the paper's prose
      discusses it as a 2way-determined triangle-only query. We keep the
      transcribed query and classify it as our classifier sees it. *)

type expected =
  | Exp_trivial
  | Exp_conp_sjf  (** Theorem 3. *)
  | Exp_ptime_cert2  (** Theorem 4. *)
  | Exp_ptime_no_tripath  (** Theorem 9. *)
  | Exp_conp_fork  (** Theorem 12. *)
  | Exp_ptime_triangle  (** Theorem 18. *)

val pp_expected : Format.formatter -> expected -> unit

type entry = {
  name : string;
  description : string;
  query : Qlang.Query.t;
  expected : expected;
}

(** The full catalogue, paper queries first. *)
val all : entry list

(** [find name] retrieves a catalogue entry.
    @raise Not_found on unknown names. *)
val find : string -> entry

val q1 : Qlang.Query.t
val q2 : Qlang.Query.t
val q3 : Qlang.Query.t
val q4 : Qlang.Query.t
val q5 : Qlang.Query.t
val q6 : Qlang.Query.t
val q7 : Qlang.Query.t

(** A pre-computed nice fork-tripath for [q2] (11 blocks, as discovered by
    {!Core.Tripath_search.find_nice} and re-verified by every test run),
    avoiding the multi-second search when building Theorem 12 gadgets. *)
val q2_nice_fork_tripath : Core.Tripath.t
