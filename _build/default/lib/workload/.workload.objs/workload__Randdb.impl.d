lib/workload/randdb.ml: Array Core Hashtbl List Qlang Random Relational Satsolver
