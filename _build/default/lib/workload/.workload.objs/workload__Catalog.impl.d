lib/workload/catalog.ml: Core Format List Qlang Relational String
