lib/workload/designs.ml: Catalog List Qlang Random Relational
