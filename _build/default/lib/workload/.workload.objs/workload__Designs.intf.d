lib/workload/designs.mli: Random Relational
