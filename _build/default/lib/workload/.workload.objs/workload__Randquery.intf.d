lib/workload/randquery.mli: Qlang Random
