lib/workload/catalog.mli: Core Format Qlang
