lib/workload/randquery.ml: List Printf Qlang Random Relational
