lib/workload/randdb.mli: Core Qlang Random Relational Satsolver
