module Schema = Relational.Schema
module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database
module Query = Qlang.Query
module Atom = Qlang.Atom
module Term = Qlang.Term

let value rng domain = Value.int (Random.State.int rng domain)

let random_fact rng (schema : Schema.t) ~domain =
  Fact.of_array schema.Schema.name
    (Array.init schema.Schema.arity (fun _ -> value rng domain))

let random rng schema ~n_facts ~domain =
  Database.of_facts [ schema ]
    (List.init n_facts (fun _ -> random_fact rng schema ~domain))

(* Instantiate an atom under a random assignment of its variables. *)
let atom_image rng atom ~domain =
  let assignment = Hashtbl.create 8 in
  let value_of v =
    match Hashtbl.find_opt assignment v with
    | Some value -> value
    | None ->
        let value = value rng domain in
        Hashtbl.add assignment v value;
        value
  in
  Fact.of_array atom.Atom.rel
    (Array.map
       (function Term.Cst v -> v | Term.Var v -> value_of v)
       atom.Atom.args)

let random_for_query rng (q : Query.t) ~n_facts ~domain =
  let schema = q.Query.schema in
  let facts =
    List.init n_facts (fun i ->
        match i mod 4 with
        | 0 -> atom_image rng q.Query.a ~domain
        | 1 -> atom_image rng q.Query.b ~domain
        | _ -> random_fact rng schema ~domain)
  in
  Database.of_facts [ schema ] facts

let random_sjf rng (s : Qlang.Sjf.t) ~n_facts ~domain =
  let facts =
    List.init n_facts (fun i ->
        match i mod 4 with
        | 0 -> atom_image rng s.Qlang.Sjf.a ~domain
        | 1 -> atom_image rng s.Qlang.Sjf.b ~domain
        | 2 ->
            Fact.of_array s.Qlang.Sjf.s1.Schema.name
              (Array.init s.Qlang.Sjf.s1.Schema.arity (fun _ -> value rng domain))
        | _ ->
            Fact.of_array s.Qlang.Sjf.s2.Schema.name
              (Array.init s.Qlang.Sjf.s2.Schema.arity (fun _ -> value rng domain)))
  in
  Database.of_facts (Qlang.Sjf.schemas s) facts

let hard_instance rng g ~n_vars ~n_clauses =
  let phi = Satsolver.Threesat.random rng ~n_vars ~n_clauses in
  match Satsolver.Threesat.normalize phi with
  | Satsolver.Threesat.Decided _ -> None
  | Satsolver.Threesat.Formula phi' ->
      Some (phi', Core.Gadget.database g phi')
