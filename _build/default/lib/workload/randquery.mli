(** Random two-atom query generation, for fuzzing the whole pipeline.

    Queries are drawn as uniform random variable patterns (one variable
    index per position, from a pool whose size controls how much the
    positions coincide). Combined with {!Randdb}, this yields the strongest
    end-to-end test in the repository: classify a random query, then check
    that the algorithm designated by the dichotomy agrees with the exact
    solver on random databases. *)

(** [random rng ~arity ~key_len ~n_vars] draws a query over the signature
    [\[arity, key_len\]] with variables chosen among [n_vars] names.
    @raise Invalid_argument on invalid signatures or [n_vars < 1]. *)
val random :
  Random.State.t -> arity:int -> key_len:int -> n_vars:int -> Qlang.Query.t

(** [random_nontrivial rng ~arity ~key_len ~n_vars ~attempts] retries until
    the query is not equivalent to a one-atom query; [None] after
    [attempts] failures. *)
val random_nontrivial :
  Random.State.t ->
  arity:int ->
  key_len:int ->
  n_vars:int ->
  attempts:int ->
  Qlang.Query.t option
