(** Structured hard instances for the triangle query
    [q6 = R(x | yz) ∧ R(z | xy)], built from triple systems.

    For [q6], every solution pair lies inside the 3-clique of facts obtained
    by rotating a triple [(α, β, γ)]:
    [R(α | βγ)], [R(γ | αβ)], [R(β | γα)]. A database made of such rotation
    cliques is certain iff no {e system of distinct representatives} assigns
    each block (key) a triple — i.e. iff Hall's condition fails in the
    key/triple incidence bipartite graph. Combinatorial designs with good
    expansion make that global argument invisible to local propagation, which
    is exactly what Theorem 14 needs: instances where CERTAIN holds but
    [Cert_k] answers no. *)

(** [triple_facts (a, b, c)] is the rotation 3-clique of a triple. *)
val triple_facts : int * int * int -> Relational.Fact.t list

(** [db_of_triples ts] is the [q6]-database of all rotation cliques. *)
val db_of_triples : (int * int * int) list -> Relational.Database.t

(** The seven lines of the Fano plane (each point on three lines). *)
val fano_lines : (int * int * int) list

(** [fano_minus i] drops the [i]-th line: seven keys compete for six
    triples, so [q6] is certain — yet [Cert_2] fails on it while [Cert_3]
    succeeds (verified in the test suite).
    @raise Invalid_argument if [i] is outside [0, 6]. *)
val fano_minus : int -> Relational.Database.t

(** Two opposite orientations of one triangle: three keys, two triples.
    [q6] is certain but [Cert_1] fails (and [Cert_2] succeeds) — the
    smallest member of the Theorem 14 family. *)
val two_orientations : Relational.Database.t

(** [rotation_system rng ~n_keys ~n_triples] draws a random triple system
    database, the workload for the matching-algorithm benchmarks. *)
val rotation_system :
  Random.State.t -> n_keys:int -> n_triples:int -> Relational.Database.t
