module Fact = Relational.Fact
module Value = Relational.Value
module Database = Relational.Database

let triple_facts (a, b, c) =
  let v = Value.int in
  [
    Fact.make "R" [ v a; v b; v c ];
    Fact.make "R" [ v c; v a; v b ];
    Fact.make "R" [ v b; v c; v a ];
  ]

let db_of_triples triples =
  Database.of_facts
    [ Catalog.q6.Qlang.Query.schema ]
    (List.concat_map triple_facts triples)

let fano_lines =
  [ (1, 2, 3); (1, 4, 5); (1, 6, 7); (2, 4, 6); (2, 5, 7); (3, 4, 7); (3, 5, 6) ]

let fano_minus i =
  if i < 0 || i > 6 then invalid_arg "Designs.fano_minus: line index in [0, 6]";
  db_of_triples (List.filteri (fun j _ -> j <> i) fano_lines)

let two_orientations = db_of_triples [ (1, 2, 3); (1, 3, 2) ]

let rotation_system rng ~n_keys ~n_triples =
  if n_keys < 1 then invalid_arg "Designs.rotation_system: need at least one key";
  let key () = 1 + Random.State.int rng n_keys in
  db_of_triples (List.init n_triples (fun _ -> (key (), key (), key ())))
