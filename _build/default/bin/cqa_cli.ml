(* Command-line front-end for the dichotomy classifier and the certain-answer
   solvers.

   cqa classify "R(x u | x y) R(u y | x z)"
   cqa certain  "R(x | y) R(y | z)" db.facts
   cqa tripath  "R(x | y z) R(z | x y)" --kind triangle
   cqa catalog
   cqa gadget   "R(x u | x y) R(u y | x z)" --vars 4 --clauses 6 *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let query_conv =
  let parse s =
    match Qlang.Parse.query s with
    | Ok q -> Ok q
    | Error msg -> Error (`Msg ("bad query: " ^ msg))
  in
  Arg.conv (parse, Qlang.Query.pp)

let query_arg =
  Arg.(
    required
    & pos 0 (some query_conv) None
    & info [] ~docv:"QUERY" ~doc:"Two-atom self-join query, e.g. \"R(x u | x y) R(u y | x z)\".")

let merges_arg =
  Arg.(
    value & opt int 2
    & info [ "merges" ] ~docv:"N" ~doc:"Centre-variable identification budget of the tripath search.")

let opts_of_merges merges =
  { Core.Tripath_search.default_options with Core.Tripath_search.max_merges = merges }

(* ------------------------------------------------------------------ *)
(* classify *)

let classify_run query merges verbose =
  let report = Core.Dichotomy.classify ~opts:(opts_of_merges merges) query in
  if verbose then Format.printf "%a@." Core.Dichotomy.explain report
  else Format.printf "%a@." Core.Dichotomy.pp_report report;
  0

let classify_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full decision trace and witness tripath.")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a query under the CQA dichotomy.")
    Term.(const classify_run $ query_arg $ merges_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* certain *)

let certain_run query db_path k exact_flag =
  match Qlang.Parse.database (read_file db_path) with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok db ->
      let exact = if exact_flag then `Sat else `Backtracking in
      let answer, algorithm = Core.Solver.certain_query ~k ~exact query db in
      Format.printf "CERTAIN: %b (via %a)@." answer Core.Solver.pp_algorithm algorithm;
      if answer then 0 else 1

let certain_cmd =
  let db_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DB" ~doc:"Database file: one fact per line, e.g. \"R(1 | 2)\".")
  in
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Fixpoint parameter of Cert_k.")
  in
  let sat_arg =
    Arg.(value & flag & info [ "sat" ] ~doc:"Use the SAT solver for coNP-hard queries.")
  in
  Cmd.v
    (Cmd.info "certain"
       ~doc:"Decide whether the query is certain for a database (exit status 1 when not)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Classifies the query first, then runs the algorithm the \
              dichotomy designates: a per-block test for trivial queries, \
              Cert_2 / Cert_k / the matching combination for PTIME queries, \
              and an exact exponential solver for coNP-complete ones.";
         ])
    Term.(const certain_run $ query_arg $ db_arg $ k_arg $ sat_arg)

(* ------------------------------------------------------------------ *)
(* tripath *)

let tripath_run query merges kind =
  let opts = opts_of_merges merges in
  let result =
    match kind with
    | Some "fork" -> Core.Tripath_search.find_fork ~opts query
    | Some "triangle" -> Core.Tripath_search.find_triangle ~opts query
    | Some other ->
        Format.eprintf "error: unknown kind %s (use fork or triangle)@." other;
        exit 2
    | None -> Core.Tripath_search.find_any ~opts query
  in
  match result with
  | Core.Tripath_search.Found (tp, k) ->
      Format.printf "found a %a-tripath with %d blocks:@.%a@." Core.Tripath.pp_kind k
        (Core.Tripath.n_blocks tp) Core.Tripath.pp tp;
      0
  | Core.Tripath_search.Not_found ->
      Format.printf "no tripath within the search bounds@.";
      1

let tripath_cmd =
  let kind_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND" ~doc:"Restrict to 'fork' or 'triangle' tripaths.")
  in
  Cmd.v
    (Cmd.info "tripath" ~doc:"Search for a tripath witness of a query.")
    Term.(const tripath_run $ query_arg $ merges_arg $ kind_arg)

(* ------------------------------------------------------------------ *)
(* catalog *)

let catalog_run merges =
  Format.printf "%-18s %-40s %s@." "name" "query" "verdict";
  List.iter
    (fun (e : Workload.Catalog.entry) ->
      let r = Core.Dichotomy.classify ~opts:(opts_of_merges merges) e.Workload.Catalog.query in
      Format.printf "%-18s %-40s %s@." e.Workload.Catalog.name
        (Qlang.Query.to_string e.Workload.Catalog.query)
        (Core.Dichotomy.verdict_summary r.Core.Dichotomy.verdict))
    Workload.Catalog.all;
  0

let catalog_cmd =
  Cmd.v
    (Cmd.info "catalog" ~doc:"Classify the built-in query catalogue (the paper's q1..q7 and more).")
    Term.(const catalog_run $ merges_arg)

(* ------------------------------------------------------------------ *)
(* gadget *)

let gadget_run query n_vars n_clauses seed =
  match Core.Gadget.create query with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok g ->
      let rng = Random.State.make [| seed |] in
      let rec try_formula attempts =
        if attempts = 0 then begin
          Format.eprintf "error: random formulas kept simplifying away@.";
          1
        end
        else
          match
            Workload.Randdb.hard_instance rng g ~n_vars ~n_clauses
          with
          | None -> try_formula (attempts - 1)
          | Some (phi, db) ->
              Format.printf "formula: %a@." Satsolver.Cnf.pp phi;
              Format.printf "database: %d facts in %d blocks@."
                (Relational.Database.size db)
                (List.length (Relational.Database.blocks db));
              let sat = Satsolver.Dpll.is_sat phi in
              let certain = Cqa.Exact.certain_query query db in
              Format.printf "satisfiable: %b, certain: %b (Lemma 13: certain = unsat: %b)@."
                sat certain (certain = not sat);
              if certain = not sat then 0 else 1
      in
      try_formula 20

let gadget_cmd =
  let vars_arg =
    Arg.(value & opt int 4 & info [ "vars" ] ~docv:"N" ~doc:"Number of 3-SAT variables.")
  in
  let clauses_arg =
    Arg.(value & opt int 6 & info [ "clauses" ] ~docv:"M" ~doc:"Number of 3-SAT clauses.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "gadget"
       ~doc:"Build the Theorem 12 hardness gadget for a fork-tripath query and check Lemma 13.")
    Term.(const gadget_run $ query_arg $ vars_arg $ clauses_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* answers *)

let answers_run query db_path free_spec =
  match Qlang.Parse.database (read_file db_path) with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok db -> (
      let free =
        String.split_on_char ',' free_spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      try
        let results = Core.Answers.evaluate ~free query db in
        Format.printf "%-30s %s@." "tuple" "certain";
        List.iter
          (fun (a : Core.Answers.t) ->
            Format.printf "%-30s %b@."
              (String.concat ", " (List.map Relational.Value.to_string a.Core.Answers.tuple))
              a.Core.Answers.certain)
          results;
        let certain = List.filter (fun (a : Core.Answers.t) -> a.Core.Answers.certain) results in
        Format.printf "@.%d certain / %d possible answers@." (List.length certain)
          (List.length results);
        0
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        2)

let answers_cmd =
  let db_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc:"Database file.")
  in
  let free_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "free" ] ~docv:"VARS" ~doc:"Comma-separated free variables, e.g. \"x,z\".")
  in
  Cmd.v
    (Cmd.info "answers"
       ~doc:"Compute the certain and possible answer tuples of a non-Boolean query.")
    Term.(const answers_run $ query_arg $ db_arg $ free_arg)

(* ------------------------------------------------------------------ *)
(* explain *)

let explain_run query db_path k =
  match Qlang.Parse.database (read_file db_path) with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok db -> (
      let g = Qlang.Solution_graph.of_query query db in
      match Cqa.Certk.certificate ~k g with
      | Some cert ->
          Format.printf "Cert_%d proves the query certain; derivation of {}:@.%a@." k
            (Cqa.Certk.pp_certificate g) cert;
          0
      | None -> (
          match Cqa.Exact.falsifying_repair g with
          | Some picks ->
              Format.printf "not certain; a falsifying repair:@.";
              List.iter
                (fun v ->
                  Format.printf "  %a@." Relational.Fact.pp
                    g.Qlang.Solution_graph.facts.(v))
                picks;
              1
          | None ->
              Format.printf
                "certain, but Cert_%d finds no derivation (raise -k, or the query \
                 needs the matching algorithm)@."
                k;
              0))

let explain_cmd =
  let db_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc:"Database file.")
  in
  let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Cert_k parameter.") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain certainty: print a Cert_k derivation certificate or a falsifying repair.")
    Term.(const explain_run $ query_arg $ db_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* dot *)

let dot_run query db_path directed =
  match Qlang.Parse.database (read_file db_path) with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok db ->
      let g = Qlang.Solution_graph.of_query query db in
      print_string (Qlang.Dot.solution_graph ~directed g);
      0

let dot_cmd =
  let db_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc:"Database file.")
  in
  let directed_arg =
    Arg.(value & flag & info [ "directed" ] ~doc:"Draw directed solutions q(a b).")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Print the solution graph G(D,q) in Graphviz DOT format (pipe into dot -Tsvg).")
    Term.(const dot_run $ query_arg $ db_arg $ directed_arg)

(* ------------------------------------------------------------------ *)
(* atlas *)

let atlas_run arity key_len verbose =
  let queries = Core.Atlas.enumerate ~arity ~key_len in
  Format.printf "signature [%d, %d]: %d canonical queries@." arity key_len
    (List.length queries);
  let entries = Core.Atlas.classify_all queries in
  Format.printf "%a@." Core.Atlas.pp_summary (Core.Atlas.summarize entries);
  if verbose then
    List.iter
      (fun (e : Core.Atlas.entry) ->
        Format.printf "%-40s %s@."
          (Qlang.Query.to_string e.Core.Atlas.query)
          (Core.Dichotomy.verdict_summary e.Core.Atlas.report.Core.Dichotomy.verdict))
      entries;
  0

let atlas_cmd =
  let arity_arg =
    Arg.(value & pos 0 int 3 & info [] ~docv:"ARITY" ~doc:"Relation arity (default 3).")
  in
  let key_arg =
    Arg.(value & pos 1 int 1 & info [] ~docv:"KEYLEN" ~doc:"Key length (default 1).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List every query with its verdict.")
  in
  Cmd.v
    (Cmd.info "atlas"
       ~doc:"Classify every two-atom query of a signature (the dichotomy landscape).")
    Term.(const atlas_run $ arity_arg $ key_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* estimate *)

let estimate_run query db_path trials seed =
  match Qlang.Parse.database (read_file db_path) with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok db ->
      let rng = Random.State.make [| seed |] in
      let e = Cqa.Montecarlo.estimate rng ~trials query db in
      Format.printf "sampled %d repairs: %d satisfied the query (frequency %.3f)@."
        e.Cqa.Montecarlo.trials e.Cqa.Montecarlo.satisfying e.Cqa.Montecarlo.frequency;
      (match e.Cqa.Montecarlo.counterexample with
      | Some r ->
          Format.printf "a sampled falsifying repair (disproves certainty):@.";
          List.iter (fun f -> Format.printf "  %a@." Relational.Fact.pp f) r
      | None -> Format.printf "no falsifying repair sampled (suggests certainty)@.");
      0

let estimate_cmd =
  let db_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc:"Database file.")
  in
  let trials_arg =
    Arg.(value & opt int 1000 & info [ "trials" ] ~docv:"N" ~doc:"Number of sampled repairs.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Monte-Carlo estimate of the fraction of repairs satisfying the query.")
    Term.(const estimate_run $ query_arg $ db_arg $ trials_arg $ seed_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "cqa" ~version:"1.0.0"
       ~doc:"Consistent query answering for two-atom self-join queries under primary keys.")
    [
      classify_cmd;
      certain_cmd;
      answers_cmd;
      explain_cmd;
      tripath_cmd;
      catalog_cmd;
      gadget_cmd;
      dot_cmd;
      atlas_cmd;
      estimate_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
