(* Interactive shell for consistent query answering.

   dune exec bin/cqa_repl.exe

   > query R(x | y) R(y | z)
   > add R(1 2)
   > add R(1 9)
   > add R(2 3)
   > certain
   > explain *)

let () =
  print_endline "cqa repl — consistent query answering under primary keys";
  print_endline "type 'help' for commands, 'quit' to leave";
  let rec loop state =
    print_string "> ";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line -> (
        match String.lowercase_ascii (String.trim line) with
        | "quit" | "exit" -> ()
        | _ ->
            let state, output = Core.Shell.exec state line in
            if output <> "" then print_endline output;
            loop state)
  in
  loop Core.Shell.initial
