bin/cqa_repl.ml: Core In_channel String
