bin/cqa_repl.mli:
