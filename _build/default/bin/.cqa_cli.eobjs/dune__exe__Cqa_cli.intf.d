bin/cqa_cli.mli:
