bin/cqa_cli.ml: Arg Array Cmd Cmdliner Core Cqa Format Fun List Manpage Qlang Random Relational Satsolver String Term Workload
